"""Batched replication engine: bit-parity, fallbacks, termination, perf.

The central contract (see ``repro.sim.batch``) is that each batched
replication is **bit-identical** to a scalar run fed the same generator
stream, and — because both backends derive the same per-rep seeds and
build the same ``default_rng`` streams — that ``backend="serial"`` and
``backend="batched"`` produce identical per-rep results.  The grid here
is therefore stronger than a statistical match: it asserts equality
field by field, plus one hardcoded snapshot pin so both engines drifting
*together* is also caught.
"""

import time

import numpy as np
import pytest

from repro.registry import build_instance, build_protocol, build_schedule
from repro.sim.batch import (
    batch_support,
    batch_supported,
    replicate_batched,
    run_batch,
)
from repro.sim.engine import run
from repro.sim.parallel import RunSpec, replicate, set_default_backend

GENERATORS = [
    ("uniform_slack", {"slack": 0.35}),
    ("random_access", {"degree": 4, "slack": 0.5, "rng": 3}),
    ("weighted_uniform", {"slack": 0.4, "weight_ratio": 4.0, "rng": 7}),
]
RATES = [
    None,
    {"name": "const", "p": 0.7},
    {"name": "slack-proportional", "floor": 0.05},
    {"name": "adaptive-backoff", "p0": 0.8, "backoff": 0.5, "recover": 1.25, "floor": 0.05},
]
SCHEDULES = [("synchronous", {}), ("alpha", {"alpha": 0.6})]

N, M, MAX_ROUNDS = 80, 8, 250


def spec(**over):
    base = dict(
        generator="uniform_slack",
        generator_kwargs={"n": 96, "m": 8, "slack": 0.35},
        protocol="qos-sampling",
        initial="pile",
        max_rounds=2000,
        label="batch-test",
    )
    base.update(over)
    return RunSpec(**base)


def summary(r):
    return (
        r.status,
        r.rounds,
        r.total_moves,
        r.total_attempts,
        r.total_messages,
        r.n_satisfied,
        r.satisfying_round,
        r.seed,
    )


# ---------------------------------------------------------------------------
# Differential grid: batched vs scalar on shared streams, bit for bit.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("gen_name,gen_kwargs", GENERATORS)
@pytest.mark.parametrize("rate", RATES, ids=lambda r: "default" if r is None else r["name"])
@pytest.mark.parametrize("sched_name,sched_kwargs", SCHEDULES)
@pytest.mark.parametrize("initial", ["random", "pile"])
def test_bit_parity_vs_scalar(gen_name, gen_kwargs, rate, sched_name, sched_kwargs, initial):
    """Same stream in, same trajectory out — every summary field and the
    final assignment match the scalar engine exactly."""
    instance = build_instance(gen_name, n=N, m=M, **gen_kwargs)
    seeds = [21, 22]
    batch = run_batch(
        instance,
        build_protocol("qos-sampling", rate=rate),
        seeds=[np.random.default_rng(s) for s in seeds],
        schedule=build_schedule(sched_name, **sched_kwargs),
        max_rounds=MAX_ROUNDS,
        initial=initial,
    )
    for i, s in enumerate(seeds):
        ref = run(
            instance,
            build_protocol("qos-sampling", rate=rate),
            seed=np.random.default_rng(s),
            schedule=build_schedule(sched_name, **sched_kwargs),
            max_rounds=MAX_ROUNDS,
            initial=initial,
            keep_state=True,
        )
        assert batch.statuses[i] == ref.status
        assert int(batch.rounds[i]) == ref.rounds
        assert int(batch.total_moves[i]) == ref.total_moves
        assert int(batch.total_attempts[i]) == ref.total_attempts
        assert int(batch.total_messages[i]) == ref.total_messages
        assert int(batch.n_satisfied[i]) == ref.n_satisfied
        sr = int(batch.satisfying_rounds[i])
        assert (None if sr < 0 else sr) == ref.satisfying_round
        assert np.array_equal(batch.final_assignment[i], ref.final_state.assignment)


def test_backends_bit_identical_per_rep():
    """replicate() gives the same per-rep results on either backend."""
    for over in (
        {},
        {"protocol_kwargs": {"rate": {"name": "slack-proportional"}}},
        {"schedule": "alpha", "schedule_kwargs": {"alpha": 0.5}, "initial": "random"},
    ):
        s = spec(**over)
        serial = replicate(s, 8, base_seed=5, workers=0, backend="serial")
        batched = replicate(s, 8, base_seed=5, backend="batched")
        assert [summary(r) for r in serial] == [summary(r) for r in batched]


def test_exact_equality_pin():
    """Hardcoded snapshot: catches both engines drifting in lockstep."""
    s = spec(
        generator_kwargs={"n": 64, "m": 8, "slack": 0.35},
        max_rounds=2000,
        label="pin",
    )
    expected = [
        ("satisfying", 3, 56, 111, 64, 3, 6852282906729047298),
        ("satisfying", 3, 54, 122, 64, 3, 1883546537405217907),
        ("satisfying", 3, 51, 123, 64, 3, 7955678236725011288),
        ("satisfying", 3, 54, 117, 64, 3, 8917795225446092046),
    ]
    for backend in ("serial", "batched"):
        got = [
            (r.status, r.rounds, r.total_moves, r.total_messages, r.n_satisfied,
             r.satisfying_round, r.seed)
            for r in replicate(s, 4, base_seed=2026, backend=backend)
        ]
        assert got == expected, backend


# ---------------------------------------------------------------------------
# Per-rep termination: dead replications stop consuming their streams.
# ---------------------------------------------------------------------------


def test_alive_mask_stops_stream_consumption():
    """Reps that finish early leave the batch with exactly a solo run's
    stream state, even while slower reps keep drawing."""
    instance = build_instance("uniform_slack", n=N, m=M, slack=0.3)
    protocol = build_protocol("qos-sampling")
    seeds = [101, 102, 103, 104, 105]
    gens = [np.random.default_rng(s) for s in seeds]
    batch = run_batch(
        instance, protocol, seeds=gens, max_rounds=MAX_ROUNDS, initial="random"
    )
    assert len(set(int(r) for r in batch.rounds)) > 1  # mixed-length batch
    for s, g in zip(seeds, gens):
        solo = np.random.default_rng(s)
        run(
            instance,
            build_protocol("qos-sampling"),
            seed=solo,
            max_rounds=MAX_ROUNDS,
            initial="random",
        )
        assert g.bit_generator.state == solo.bit_generator.state


# ---------------------------------------------------------------------------
# Support matrix and graceful fallback.
# ---------------------------------------------------------------------------


def test_batch_support_reasons():
    assert batch_support(spec()) is None
    assert batch_supported(spec())
    # Every protocol with a batched kernel is supported on kernel-friendly
    # schedules/initials — including the ones the gate used to reject.
    for kernel_spec in (
        spec(protocol="multi-probe", protocol_kwargs={"d": 2}),
        spec(protocol="permit"),
        spec(protocol="neighborhood", protocol_kwargs={"topology": "ring", "m": 8}),
        spec(
            protocol="neighborhood",
            protocol_kwargs={"topology": "ring", "m": 8, "rate": {"name": "slack-proportional"}},
        ),
    ):
        assert batch_support(kernel_spec) is None, kernel_spec.protocol
        assert batch_supported(kernel_spec), kernel_spec.protocol
    cases = {
        "protocol": spec(protocol="best-response"),
        "schedule": spec(schedule="partition", schedule_kwargs={"k": 2}),
        "instance": spec(instance_seed_key="per-rep"),
        "resample": spec(protocol_kwargs={"resample_on_self": True}),
        "initial": spec(initial="spread"),
        "topology": spec(
            protocol="neighborhood", protocol_kwargs={"topology": "moebius", "m": 8}
        ),
    }
    for label, s in cases.items():
        reason = batch_support(s)
        assert reason is not None and isinstance(reason, str), label
        assert not batch_supported(s), label


def test_unsupported_spec_falls_back_to_serial():
    s = spec(schedule="partition", schedule_kwargs={"k": 2})
    via_batched = replicate(s, 4, base_seed=3, backend="batched")
    via_serial = replicate(s, 4, base_seed=3, workers=0, backend="serial")
    assert [summary(r) for r in via_batched] == [summary(r) for r in via_serial]


def test_run_batch_rejects_unsupported_protocol():
    instance = build_instance("uniform_slack", n=32, m=4, slack=0.4)
    with pytest.raises(ValueError, match="no batched kernel"):
        run_batch(instance, build_protocol("best-response"), seeds=[1, 2])


def test_run_batch_validation():
    instance = build_instance("uniform_slack", n=32, m=4, slack=0.4)
    protocol = build_protocol("qos-sampling")
    with pytest.raises(ValueError):
        run_batch(instance, protocol, seeds=[])
    with pytest.raises(ValueError):
        run_batch(instance, protocol, seeds=[1], max_rounds=-1)
    with pytest.raises(ValueError):
        replicate_batched(spec(), 0)
    with pytest.raises(ValueError, match="no batched kernel"):
        replicate_batched(spec(protocol="best-response"), 2)


def test_single_rep_batched_matches_serial():
    # backend="batched" honors R=1; "auto" routes R=1 to the scalar path.
    s = spec()
    one_serial = replicate(s, 1, base_seed=9, workers=0, backend="serial")
    one_batched = replicate(s, 1, base_seed=9, backend="batched")
    one_auto = replicate(s, 1, base_seed=9, backend="auto")
    assert summary(one_serial[0]) == summary(one_batched[0]) == summary(one_auto[0])


def test_set_default_backend_roundtrip():
    previous = set_default_backend("serial")
    try:
        assert set_default_backend("auto") == "serial"
        with pytest.raises(ValueError, match="unknown backend"):
            set_default_backend("gpu")
    finally:
        set_default_backend(previous)


# ---------------------------------------------------------------------------
# Decomposition.
# ---------------------------------------------------------------------------


def test_decompose_fields():
    batch = replicate_batched(spec(max_rounds=3), 5, base_seed=11)
    assert len(batch) == 5
    for r in batch:
        assert r.n_users == 96 and r.n_resources == 8
        assert isinstance(r.seed, int)
        assert r.protocol["name"].startswith("qos-sampling")
        if r.status == "max_rounds":
            assert r.rounds == 3 and r.satisfying_round is None
        elif r.status == "satisfying":
            assert r.satisfying_round == r.rounds
    assert len({r.seed for r in batch}) == 5


def test_max_rounds_zero_round_satisfaction():
    # A trivially feasible instance satisfies at round 0 on both engines.
    s = spec(generator_kwargs={"n": 4, "m": 8, "slack": 0.9}, max_rounds=0, initial="random")
    for backend in ("serial", "batched"):
        for r in replicate(s, 3, base_seed=1, backend=backend):
            assert r.status == "satisfying"
            assert r.rounds == 0 and r.satisfying_round == 0


# ---------------------------------------------------------------------------
# Throughput (stress: excluded from the blocking tier-1 job).
# ---------------------------------------------------------------------------


@pytest.mark.stress
def test_batched_throughput_3x_on_smoke_workload():
    """The documented claim: >=3x user-round throughput at n=2000, R=32."""
    s = spec(
        generator_kwargs={"n": 2000, "m": 64, "slack": 0.4},
        max_rounds=64,
        label="stress-batch",
    )
    reps = 32
    replicate(s, reps, base_seed=0, workers=0, backend="serial")  # warm-up
    replicate(s, reps, base_seed=0, backend="batched")
    serial_best = batched_best = float("inf")
    for _ in range(5):  # interleaved best-of: machine drift hits both legs
        t0 = time.perf_counter()
        serial_res = replicate(s, reps, base_seed=0, workers=0, backend="serial")
        serial_best = min(serial_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched_res = replicate(s, reps, base_seed=0, backend="batched")
        batched_best = min(batched_best, time.perf_counter() - t0)
    assert [summary(r) for r in serial_res] == [summary(r) for r in batched_res]
    rounds = sum(r.rounds for r in serial_res)
    serial_urps = rounds * 2000 / serial_best
    batched_urps = rounds * 2000 / batched_best
    assert batched_urps >= 3.0 * serial_urps, (
        f"batched {batched_urps:,.0f} vs serial {serial_urps:,.0f} user-rounds/s"
    )


# ---------------------------------------------------------------------------
# Degenerate edges: both backends agree where the round loop barely runs.
# ---------------------------------------------------------------------------


class TestDegenerateEdges:
    """Backend parity at the boundaries: empty round budget, a single
    resource (nowhere to move), and a start state that already satisfies."""

    def test_max_rounds_zero_infeasible_parity(self):
        # Pile start on a tight instance cannot satisfy at round 0; both
        # backends must stop immediately with the same accounting.
        s = spec(max_rounds=0, initial="pile")
        serial = replicate(s, 3, base_seed=5, workers=0, backend="serial")
        batched = replicate(s, 3, base_seed=5, backend="batched")
        assert [summary(r) for r in serial] == [summary(r) for r in batched]
        for r in serial:
            assert r.status == "max_rounds" and r.rounds == 0
            assert r.total_moves == 0 and r.total_attempts == 0

    def test_single_resource_parity(self):
        # m = 1: every sampled target is the current resource, so nothing
        # ever moves.  Generous capacity -> satisfies at round 0; an
        # overloaded single resource -> identical non-convergence.
        generous = spec(
            generator_kwargs={"n": 6, "m": 1, "slack": 0.5},
            initial="random",
            max_rounds=50,
        )
        for r_s, r_b in zip(
            replicate(generous, 2, base_seed=9, workers=0, backend="serial"),
            replicate(generous, 2, base_seed=9, backend="batched"),
        ):
            assert summary(r_s) == summary(r_b)
            assert r_s.status == "satisfying" and r_s.rounds == 0

        jammed = spec(
            generator="overloaded",
            generator_kwargs={"n": 8, "m": 1, "q": 2.0},
            initial="pile",
            max_rounds=25,
        )
        for r_s, r_b in zip(
            replicate(jammed, 2, base_seed=9, workers=0, backend="serial"),
            replicate(jammed, 2, base_seed=9, backend="batched"),
        ):
            assert summary(r_s) == summary(r_b)
            assert r_s.status in ("max_rounds", "quiescent")
            assert r_s.total_moves == 0

    def test_all_satisfied_initial_with_budget_parity(self):
        # Already-satisfying start with rounds to spare: both backends
        # report round-0 satisfaction without consuming the budget.
        s = spec(
            generator_kwargs={"n": 4, "m": 8, "slack": 0.9},
            initial="random",
            max_rounds=100,
        )
        serial = replicate(s, 3, base_seed=2, workers=0, backend="serial")
        batched = replicate(s, 3, base_seed=2, backend="batched")
        assert [summary(r) for r in serial] == [summary(r) for r in batched]
        for r in serial:
            assert r.status == "satisfying"
            assert r.rounds == 0 and r.satisfying_round == 0


# ---------------------------------------------------------------------------
# Kernel coverage: multi-probe, permit and neighborhood match the scalar
# engine bit for bit on the same grid as the sampling kernel.
# ---------------------------------------------------------------------------


#: (protocol, kwargs) pairs spanning every new kernel, its tunables and
#: the rate rules it composes with (permit takes no rate by design).
KERNEL_PROTOCOLS = [
    ("multi-probe", {"d": 2}),
    ("multi-probe", {"d": 3, "rate": {"name": "slack-proportional", "floor": 0.05}}),
    (
        "multi-probe",
        {
            "d": 2,
            "rate": {
                "name": "adaptive-backoff",
                "p0": 0.8,
                "backoff": 0.5,
                "recover": 1.25,
                "floor": 0.05,
            },
        },
    ),
    ("permit", {}),
    ("neighborhood", {"topology": "ring", "m": M}),
    (
        "neighborhood",
        {
            "topology": "random-regular",
            "m": M,
            "rate": {"name": "slack-proportional", "floor": 0.05},
        },
    ),
]


@pytest.mark.parametrize("gen_name,gen_kwargs", GENERATORS)
@pytest.mark.parametrize(
    "proto_name,proto_kwargs", KERNEL_PROTOCOLS, ids=lambda p: str(p)
)
@pytest.mark.parametrize("sched_name,sched_kwargs", SCHEDULES)
def test_kernel_bit_parity_vs_scalar(
    gen_name, gen_kwargs, proto_name, proto_kwargs, sched_name, sched_kwargs
):
    instance = build_instance(gen_name, n=N, m=M, **gen_kwargs)
    seeds = [21, 22]
    batch = run_batch(
        instance,
        build_protocol(proto_name, **proto_kwargs),
        seeds=[np.random.default_rng(s) for s in seeds],
        schedule=build_schedule(sched_name, **sched_kwargs),
        max_rounds=MAX_ROUNDS,
        initial="pile",
    )
    for i, s in enumerate(seeds):
        ref = run(
            instance,
            build_protocol(proto_name, **proto_kwargs),
            seed=np.random.default_rng(s),
            schedule=build_schedule(sched_name, **sched_kwargs),
            max_rounds=MAX_ROUNDS,
            initial="pile",
            keep_state=True,
        )
        assert batch.statuses[i] == ref.status
        assert int(batch.rounds[i]) == ref.rounds
        assert int(batch.total_moves[i]) == ref.total_moves
        assert int(batch.total_attempts[i]) == ref.total_attempts
        assert int(batch.total_messages[i]) == ref.total_messages
        assert int(batch.n_satisfied[i]) == ref.n_satisfied
        sr = int(batch.satisfying_rounds[i])
        assert (None if sr < 0 else sr) == ref.satisfying_round
        assert np.array_equal(batch.final_assignment[i], ref.final_state.assignment)


# ---------------------------------------------------------------------------
# Batched event injection: mid-run perturbations replay identically.
# ---------------------------------------------------------------------------


def _event_script(m):
    from repro.core.latency import AffineLatency
    from repro.sim.events import (
        ResourceFailure,
        ResourceRecovery,
        UserArrival,
        UserDeparture,
    )

    return [
        ResourceFailure(3, 1),
        ResourceRecovery(7, 1, AffineLatency(1.0, 0.0)),
        UserArrival(10, thresholds=np.full(6, 28.0)),
        UserDeparture(13, users=[0, 2, 5]),
    ]


@pytest.mark.parametrize(
    "proto_name,proto_kwargs",
    [
        ("qos-sampling", {}),
        ("multi-probe", {"d": 2}),
        ("permit", {}),
        ("neighborhood", {"topology": "ring", "m": M}),
    ],
    ids=lambda p: str(p),
)
def test_batched_event_injection_parity(proto_name, proto_kwargs):
    """Failure/recovery/arrival/departure events through the batched engine
    match a scalar run of the same script, including recovery accounting."""
    instance = build_instance("uniform_slack", n=N, m=M, slack=0.35)
    seeds = [41, 42, 43]
    batch = run_batch(
        instance,
        build_protocol(proto_name, **proto_kwargs),
        seeds=[np.random.default_rng(s) for s in seeds],
        max_rounds=MAX_ROUNDS,
        initial="pile",
        events=_event_script(M),
    )
    for i, s in enumerate(seeds):
        ref = run(
            instance,
            build_protocol(proto_name, **proto_kwargs),
            seed=np.random.default_rng(s),
            max_rounds=MAX_ROUNDS,
            initial="pile",
            events=_event_script(M),
            keep_state=True,
        )
        assert batch.statuses[i] == ref.status
        assert int(batch.rounds[i]) == ref.rounds
        assert int(batch.total_moves[i]) == ref.total_moves
        assert int(batch.total_messages[i]) == ref.total_messages
        assert int(batch.n_satisfied[i]) == ref.n_satisfied
        assert batch.last_event_round == ref.last_event_round
        sr = int(batch.satisfying_rounds[i])
        assert (None if sr < 0 else sr) == ref.satisfying_round
        assert np.array_equal(batch.final_assignment[i], ref.final_state.assignment)


def test_run_batch_rejects_unsupported_events():
    from repro.sim.events import UserDeparture

    instance = build_instance("uniform_slack", n=32, m=4, slack=0.4)
    protocol = build_protocol("qos-sampling")
    with pytest.raises(ValueError, match="random-count"):
        run_batch(instance, protocol, seeds=[1, 2], events=[UserDeparture(5, count=3)])


# ---------------------------------------------------------------------------
# Hybrid backend: sharding across a pool never changes a single bit.
# ---------------------------------------------------------------------------


def test_hybrid_bit_identical_across_worker_counts():
    """Per-rep seeds depend only on the global rep index, so any shard
    split — including the degenerate 1-shard batched path — reproduces the
    serial results exactly."""
    s = spec()
    expected = [
        summary(r) for r in replicate(s, 9, base_seed=7, workers=0, backend="serial")
    ]
    for workers in (1, 2, 3, 5, None):
        got = [
            summary(r)
            for r in replicate(s, 9, base_seed=7, workers=workers, backend="hybrid")
        ]
        assert got == expected, f"workers={workers}"


def test_hybrid_bit_identical_under_chunking():
    """User-axis chunk size is an execution detail: tiny chunks force the
    chunked kernel blocks without perturbing hybrid results."""
    from repro.core.memory import set_user_chunk

    s = spec(protocol_kwargs={"rate": {"name": "slack-proportional"}})
    expected = [
        summary(r) for r in replicate(s, 6, base_seed=3, workers=0, backend="serial")
    ]
    previous = set_user_chunk(17)
    try:
        got = [
            summary(r)
            for r in replicate(s, 6, base_seed=3, workers=2, backend="hybrid")
        ]
    finally:
        set_user_chunk(previous)
    assert got == expected


def test_hybrid_falls_back_on_unsupported_spec():
    s = spec(schedule="partition", schedule_kwargs={"k": 2})
    via_hybrid = replicate(s, 4, base_seed=3, workers=2, backend="hybrid")
    via_serial = replicate(s, 4, base_seed=3, workers=0, backend="serial")
    assert [summary(r) for r in via_hybrid] == [summary(r) for r in via_serial]


@pytest.mark.stress
def test_hybrid_beats_both_pure_legs_on_multicore():
    """The ISSUE claim: at R=32 on >=2 cores the hybrid backend beats the
    scalar pool outright and at least matches single-process batched."""
    import os

    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip("hybrid degenerates to plain batched on one core")
    s = spec(
        generator_kwargs={"n": 2000, "m": 64, "slack": 0.4},
        max_rounds=64,
        label="stress-hybrid",
    )
    reps = 32
    workers = min(4, cores)
    replicate(s, reps, base_seed=0, workers=workers, backend="serial")  # warm-up
    replicate(s, reps, base_seed=0, backend="batched")
    replicate(s, reps, base_seed=0, workers=workers, backend="hybrid")
    pool_best = batched_best = hybrid_best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        pool_res = replicate(s, reps, base_seed=0, workers=workers, backend="serial")
        pool_best = min(pool_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched_res = replicate(s, reps, base_seed=0, backend="batched")
        batched_best = min(batched_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        hybrid_res = replicate(s, reps, base_seed=0, workers=workers, backend="hybrid")
        hybrid_best = min(hybrid_best, time.perf_counter() - t0)
    assert [summary(r) for r in hybrid_res] == [summary(r) for r in pool_res]
    assert [summary(r) for r in hybrid_res] == [summary(r) for r in batched_res]
    assert hybrid_best < pool_best, (
        f"hybrid {hybrid_best:.3f}s vs pool {pool_best:.3f}s @{workers} workers"
    )
    # Process spin-up costs a little; "beats batched" is the multi-core
    # expectation but noise-tolerant: allow 10% slack.
    assert hybrid_best <= batched_best * 1.1, (
        f"hybrid {hybrid_best:.3f}s vs batched {batched_best:.3f}s @{workers} workers"
    )


# ---------------------------------------------------------------------------
# Dtype audit: wide (pre-audit int64) and narrow layouts are bit-identical.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("gen_name,gen_kwargs", GENERATORS)
@pytest.mark.parametrize("rate", RATES, ids=lambda r: "default" if r is None else r["name"])
@pytest.mark.parametrize("sched_name,sched_kwargs", SCHEDULES)
@pytest.mark.parametrize("initial", ["random", "pile"])
def test_narrow_dtypes_bit_identical_to_wide(
    gen_name, gen_kwargs, rate, sched_name, sched_kwargs, initial
):
    """The int16/int32 audit is invisible: the same stream through the
    pre-audit all-int64 layout (``wide_dtypes``) and the narrowed layout
    yields identical trajectories on both backends."""
    from repro.core.memory import wide_dtypes

    def legs(seed):
        instance = build_instance(gen_name, n=N, m=M, **gen_kwargs)
        ref = run(
            instance,
            build_protocol("qos-sampling", rate=rate),
            seed=np.random.default_rng(seed),
            schedule=build_schedule(sched_name, **sched_kwargs),
            max_rounds=MAX_ROUNDS,
            initial=initial,
            keep_state=True,
        )
        batch = run_batch(
            instance,
            build_protocol("qos-sampling", rate=rate),
            seeds=[np.random.default_rng(seed)],
            schedule=build_schedule(sched_name, **sched_kwargs),
            max_rounds=MAX_ROUNDS,
            initial=initial,
        )
        return ref, batch

    with wide_dtypes():
        ref_w, batch_w = legs(33)
    ref_n, batch_n = legs(33)

    assert ref_w.summary() == ref_n.summary()
    # array_equal compares values, not dtypes: int64 vs int16 layouts agree
    assert np.array_equal(ref_w.final_state.assignment, ref_n.final_state.assignment)
    assert batch_w.statuses == batch_n.statuses
    assert np.array_equal(batch_w.rounds, batch_n.rounds)
    assert np.array_equal(batch_w.total_moves, batch_n.total_moves)
    assert np.array_equal(batch_w.final_assignment, batch_n.final_assignment)
