"""QoSSamplingProtocol: information model, absorption, rate behaviour."""

import numpy as np
import pytest

from repro.core.protocols.rates import ConstantRate
from repro.core.protocols.sampling import QoSSamplingProtocol
from repro.core.state import State

from conftest import assert_valid_state


def make_protocol(p=1.0, **kwargs):
    proto = QoSSamplingProtocol(rate=ConstantRate(p), **kwargs)
    return proto


def test_satisfying_states_are_absorbing(small_uniform, rng):
    state = State(small_uniform, np.asarray([0, 1, 2, 3] * 3))
    assert state.is_satisfying()
    proto = make_protocol()
    proto.reset(small_uniform, rng)
    for _ in range(20):
        proposal = proto.propose(state, np.ones(12, dtype=bool), rng)
        assert proposal.size == 0


def test_only_unsatisfied_users_propose(small_uniform, rng):
    state = State(small_uniform, np.asarray([0] * 6 + [1] * 3 + [2] * 3))
    proto = make_protocol()
    proto.reset(small_uniform, rng)
    for _ in range(30):
        proposal = proto.propose(state, np.ones(12, dtype=bool), rng)
        assert set(proposal.users).issubset(set(range(6)))


def test_proposals_pass_conservative_check(small_uniform, rng):
    state = State.worst_case_pile(small_uniform)
    proto = make_protocol()
    proto.reset(small_uniform, rng)
    for _ in range(30):
        proposal = proto.propose(state, np.ones(12, dtype=bool), rng)
        if proposal.size:
            ok = state.would_satisfy(proposal.users, proposal.targets)
            assert ok.all()
            assert (proposal.targets != state.assignment[proposal.users]).all()


def test_active_mask_respected(small_uniform, rng):
    state = State.worst_case_pile(small_uniform)
    proto = make_protocol()
    proto.reset(small_uniform, rng)
    active = np.zeros(12, dtype=bool)
    active[:3] = True
    for _ in range(20):
        proposal = proto.propose(state, active, rng)
        assert set(proposal.users).issubset({0, 1, 2})


def test_rate_damping_thins_proposals(small_uniform):
    state = State.worst_case_pile(small_uniform)
    counts = {}
    for p in (1.0, 0.25):
        rng = np.random.default_rng(7)
        proto = make_protocol(p)
        proto.reset(small_uniform, rng)
        total = 0
        for _ in range(200):
            total += proto.propose(state, np.ones(12, dtype=bool), rng).size
        counts[p] = total
    assert counts[0.25] < 0.5 * counts[1.0]


def test_step_applies_simultaneously(small_uniform, rng):
    state = State.worst_case_pile(small_uniform)
    proto = make_protocol()
    proto.reset(small_uniform, rng)
    outcome = proto.step(state, np.ones(12, dtype=bool), rng)
    assert outcome.n_moved == outcome.n_attempted > 0
    assert_valid_state(state)


def test_overshoot_is_possible_with_p1(small_uniform):
    """With p = 1, concurrent arrivals can exceed the target's capacity —
    the phenomenon damping exists to control."""
    overshoot_seen = False
    for seed in range(30):
        rng = np.random.default_rng(seed)
        state = State.worst_case_pile(small_uniform)
        proto = make_protocol(1.0)
        proto.reset(small_uniform, rng)
        proto.step(state, np.ones(12, dtype=bool), rng)
        # q = 4: any load above 4 on a previously-empty target is overshoot.
        if np.any(state.loads[1:] > 4):
            overshoot_seen = True
            break
    assert overshoot_seen


def test_resample_on_self_reduces_wasted_probes(small_uniform):
    # From the pile, sampling one's own resource wastes the probe; the
    # resample flag should strictly increase the number of proposals in
    # expectation.  (Statistical test with a fixed seed.)
    totals = {}
    for flag in (False, True):
        rng = np.random.default_rng(11)
        proto = make_protocol(1.0, resample_on_self=flag)
        proto.reset(small_uniform, rng)
        state = State.worst_case_pile(small_uniform)
        totals[flag] = sum(
            proto.propose(state, np.ones(12, dtype=bool), rng).size
            for _ in range(300)
        )
    assert totals[True] >= totals[False]


def test_describe_includes_rate(small_uniform):
    proto = QoSSamplingProtocol()
    d = proto.describe()
    assert d["name"].startswith("qos-sampling")
    assert d["rate"]["name"] == "const(0.5)"
    assert d["sequential"] is False


def test_quiescence_matches_selfish_stability(trap_state, rng):
    proto = make_protocol()
    proto.reset(trap_state.instance, rng)
    assert proto.is_quiescent(trap_state) is True
    pile = State.worst_case_pile(trap_state.instance)
    assert proto.is_quiescent(pile) is False
