"""Regression tests pinning the engine's round accounting.

Three layers of pinning:

- ``RunResult.rounds`` agrees with the recorded trajectory
  (``first_satisfying_round``) for satisfying runs — the two accountings
  used to disagree by one (the trajectory reported the array index, the
  result the round boundary);
- ``recovery_rounds`` measures rounds from the last event to the first
  satisfying state;
- frozen-seed golden summaries, one cell per registered protocol, anchor
  the cached/uncached equivalence claim to concrete seed-state behaviour:
  any change to RNG stream consumption, proposal filtering, or round
  accounting shows up here as a hard diff.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.latency import IdentityLatency
from repro.registry import build_instance, build_protocol
from repro.sim.engine import run
from repro.sim.events import ResourceFailure, ResourceRecovery
from repro.sim.metrics import Recorder
from repro.sim.parallel import RunSpec, run_spec

# ---------------------------------------------------------------------------
# rounds vs. trajectory


@pytest.mark.parametrize(
    "protocol,protocol_kwargs",
    [
        ("qos-sampling", {}),
        ("multi-probe", {"d": 2}),
        ("permit", {}),
        ("sweep-best-response", {}),
    ],
)
@pytest.mark.parametrize("seed", [0, 7, 2026])
def test_rounds_match_trajectory_first_satisfying_round(
    protocol, protocol_kwargs, seed
):
    inst = build_instance("uniform_slack", n=64, m=8, slack=0.3)
    recorder = Recorder()
    result = run(
        inst,
        build_protocol(protocol, **protocol_kwargs),
        seed=seed,
        initial="pile",
        max_rounds=500,
        recorder=recorder,
    )
    assert result.status == "satisfying"
    assert result.rounds == result.satisfying_round
    assert result.rounds == result.trajectory.first_satisfying_round()
    assert result.trajectory.rounds == result.rounds


def test_already_satisfying_initial_state_counts_zero_rounds():
    inst = build_instance("uniform_slack", n=64, m=8, slack=0.3)
    warm = run(
        inst, build_protocol("qos-sampling"), seed=0, initial="pile", keep_state=True
    )
    assert warm.status == "satisfying"
    recorder = Recorder()
    result = run(
        inst,
        build_protocol("qos-sampling"),
        seed=1,
        initial=warm.final_state,
        recorder=recorder,
    )
    assert result.status == "satisfying"
    assert result.rounds == 0
    assert result.satisfying_round == 0
    # No round executed, so the trajectory is empty and has no first
    # satisfying round — the zero-round edge lives only on the result.
    assert result.trajectory.rounds == 0
    assert result.trajectory.first_satisfying_round() is None


def test_unsatisfying_run_has_no_satisfying_round():
    inst = build_instance("uniform_slack", n=64, m=8, slack=0.3)
    recorder = Recorder()
    result = run(
        inst,
        build_protocol("qos-sampling"),
        seed=0,
        initial="pile",
        max_rounds=1,
        recorder=recorder,
    )
    assert result.status == "max_rounds"
    assert result.satisfying_round is None
    assert result.trajectory.first_satisfying_round() is None
    assert result.recovery_rounds is None


# ---------------------------------------------------------------------------
# recovery accounting with events


def test_recovery_rounds_with_events():
    inst = build_instance("uniform_slack", n=64, m=8, slack=0.3)
    events = [
        ResourceFailure(round_index=2, resource=0),
        ResourceRecovery(round_index=6, resource=0, latency=IdentityLatency()),
    ]
    result = run(
        inst,
        build_protocol("qos-sampling"),
        seed=11,
        initial="pile",
        max_rounds=2000,
        events=events,
    )
    assert result.status == "satisfying"
    assert result.last_event_round == 6
    assert result.satisfying_round is not None
    assert result.satisfying_round >= result.last_event_round
    assert result.recovery_rounds == result.satisfying_round - result.last_event_round
    # satisfaction reached before the failure does not count: the event
    # resets satisfying_round, so recovery is measured from the last event.
    assert result.rounds == result.satisfying_round


def test_recovery_rounds_none_without_events():
    inst = build_instance("uniform_slack", n=64, m=8, slack=0.3)
    result = run(inst, build_protocol("qos-sampling"), seed=11, initial="pile")
    assert result.status == "satisfying"
    assert result.last_event_round is None
    assert result.recovery_rounds is None


# ---------------------------------------------------------------------------
# frozen-seed golden summaries (one cell per registered protocol)
#
# Cell: uniform_slack(n=64, m=8, slack=0.3), pile start, synchronous
# schedule, seed 2026, max_rounds=500.  Regenerate deliberately (never to
# silence a failure) with:
#
#   PYTHONPATH=src python - <<'EOF'
#   from repro.sim.parallel import RunSpec, run_spec
#   from tests.test_round_accounting import GOLDEN_CELLS
#   for name, kw, _ in GOLDEN_CELLS:
#       spec = RunSpec(generator="uniform_slack",
#                      generator_kwargs={"n": 64, "m": 8, "slack": 0.3},
#                      protocol=name, protocol_kwargs=kw,
#                      max_rounds=500, initial="pile")
#       s = run_spec(spec, 2026).summary()
#       print(name, kw, {k: s[k] for k in GOLDEN_KEYS})
#   EOF

GOLDEN_KEYS = (
    "status",
    "rounds",
    "total_moves",
    "total_attempts",
    "total_messages",
    "n_satisfied",
    "satisfying_round",
)

GOLDEN_CELLS = [
    (
        "qos-sampling",
        {},
        {
            "status": "satisfying",
            "rounds": 3,
            "total_moves": 58,
            "total_attempts": 58,
            "total_messages": 123,
            "n_satisfied": 64,
            "satisfying_round": 3,
        },
    ),
    (
        "multi-probe",
        {"d": 2},
        {
            "status": "satisfying",
            "rounds": 3,
            "total_moves": 56,
            "total_attempts": 56,
            "total_messages": 220,
            "n_satisfied": 64,
            "satisfying_round": 3,
        },
    ),
    (
        "permit",
        {},
        {
            "status": "satisfying",
            "rounds": 1,
            "total_moves": 54,
            "total_attempts": 54,
            "total_messages": 128,
            "n_satisfied": 64,
            "satisfying_round": 1,
        },
    ),
    (
        "best-response",
        {},
        {
            "status": "satisfying",
            "rounds": 52,
            "total_moves": 52,
            "total_attempts": 52,
            "total_messages": 2002,
            "n_satisfied": 64,
            "satisfying_round": 52,
        },
    ),
    (
        "sweep-best-response",
        {},
        {
            "status": "satisfying",
            "rounds": 1,
            "total_moves": 52,
            "total_attempts": 52,
            "total_messages": 64,
            "n_satisfied": 64,
            "satisfying_round": 1,
        },
    ),
    (
        "naive-greedy",
        {},
        {
            "status": "satisfying",
            "rounds": 1,
            "total_moves": 54,
            "total_attempts": 54,
            "total_messages": 64,
            "n_satisfied": 64,
            "satisfying_round": 1,
        },
    ),
    (
        "blind-random",
        {},
        {
            "status": "satisfying",
            "rounds": 1,
            "total_moves": 54,
            "total_attempts": 64,
            "total_messages": 64,
            "n_satisfied": 64,
            "satisfying_round": 1,
        },
    ),
    (
        "selfish-rebalance",
        {},
        {
            "status": "satisfying",
            "rounds": 1,
            "total_moves": 52,
            "total_attempts": 52,
            "total_messages": 64,
            "n_satisfied": 64,
            "satisfying_round": 1,
        },
    ),
    (
        "neighborhood",
        {"topology": "ring", "m": 8},
        {
            "status": "quiescent",
            "rounds": 9,
            "total_moves": 63,
            "total_attempts": 63,
            "total_messages": 373,
            "n_satisfied": 43,
            "satisfying_round": None,
        },
    ),
]


@pytest.mark.parametrize(
    "protocol,protocol_kwargs,expected",
    GOLDEN_CELLS,
    ids=[name for name, _, _ in GOLDEN_CELLS],
)
def test_frozen_seed_golden_summary(protocol, protocol_kwargs, expected):
    spec = RunSpec(
        generator="uniform_slack",
        generator_kwargs={"n": 64, "m": 8, "slack": 0.3},
        protocol=protocol,
        protocol_kwargs=protocol_kwargs,
        max_rounds=500,
        initial="pile",
    )
    summary = run_spec(spec, 2026).summary()
    assert {k: summary[k] for k in GOLDEN_KEYS} == expected
