"""Replication runner: determinism, spec plumbing, process pools."""

import numpy as np
import pytest

from repro.sim.parallel import RunSpec, replicate, run_spec, spec_seed_key
from repro.sim.rng import seed_from_key


def spec(**over):
    base = dict(
        generator="uniform_slack",
        generator_kwargs={"n": 128, "m": 8, "slack": 0.3},
        protocol="qos-sampling",
        initial="pile",
        max_rounds=5000,
        label="par-test",
    )
    base.update(over)
    return RunSpec(**base)


def test_serial_replication_deterministic():
    a = replicate(spec(), 4, base_seed=7, workers=0)
    b = replicate(spec(), 4, base_seed=7, workers=0)
    assert [r.rounds for r in a] == [r.rounds for r in b]
    assert [r.total_moves for r in a] == [r.total_moves for r in b]


def test_replications_are_independent():
    results = replicate(spec(), 8, base_seed=7)
    moves = {r.total_moves for r in results}
    assert len(moves) > 1  # different seeds -> different trajectories


def test_base_seed_changes_results():
    a = replicate(spec(), 4, base_seed=1)
    b = replicate(spec(), 4, base_seed=2)
    assert [r.total_moves for r in a] != [r.total_moves for r in b]


def test_run_spec_builds_everything():
    result = run_spec(
        spec(
            protocol="neighborhood",
            protocol_kwargs={"topology": "ring", "m": 8},
            schedule="alpha",
            schedule_kwargs={"alpha": 0.5},
        ),
        seed=3,
    )
    assert result.status in ("satisfying", "quiescent")
    assert result.schedule["name"] == "alpha(0.5)"


def test_per_rep_instance_seeding():
    # zipf draws thresholds from its rng: per-rep seeding must vary them,
    # fixed seeding must not.  Convergence rounds are a proxy.
    base = dict(
        generator="zipf_thresholds",
        generator_kwargs={"n": 100, "m": 8},
        initial="pile",
        max_rounds=5000,
        label="per-rep",
    )
    fixed = replicate(RunSpec(**base, instance_seed_key="fixed"), 3, base_seed=1)
    per_rep = replicate(RunSpec(**base, instance_seed_key="per-rep"), 3, base_seed=1)
    assert len(fixed) == len(per_rep) == 3
    # both run; can't easily introspect the instance, but seeds must differ
    # -> allow either; the main assertion is that the plumbing works.
    for r in fixed + per_rep:
        assert r.n_users == 100


def _streams(s, n=6, base_seed=7, seed_key=None):
    key = seed_key if seed_key is not None else spec_seed_key(s)
    return [seed_from_key(base_seed, key, str(i)) for i in range(n)]


def test_unlabeled_cells_get_distinct_seed_streams():
    # The old scheme keyed seeds on `label or protocol`: every unlabeled
    # cell of a sweep sharing a protocol reused ONE stream, silently
    # correlating replications across cells.  Any differing field must now
    # yield a different stream.
    a = spec(label="", generator_kwargs={"n": 128, "m": 8, "slack": 0.3})
    b = spec(label="", generator_kwargs={"n": 128, "m": 8, "slack": 0.2})
    c = spec(label="", max_rounds=4999)
    assert _streams(a) != _streams(b)
    assert _streams(a) != _streams(c)
    assert _streams(a) == _streams(spec(label=""))  # same config -> same stream


def test_same_label_different_config_distinct_streams():
    # Sharing a label is no longer enough to collide streams.
    a = spec(label="sweep", generator_kwargs={"n": 128, "m": 8, "slack": 0.3})
    b = spec(label="sweep", generator_kwargs={"n": 256, "m": 8, "slack": 0.3})
    assert _streams(a) != _streams(b)


def test_seed_key_opt_in_common_random_numbers():
    # Paired comparisons: an explicit seed_key pins the stream regardless
    # of the spec's own fields (here: different labels).
    a, b = spec(label="arm-a"), spec(label="arm-b")
    assert _streams(a) != _streams(b)  # default: independent
    assert _streams(a, seed_key="crn") == _streams(b, seed_key="crn")
    ra = replicate(a, 3, base_seed=5, seed_key="crn")
    rb = replicate(b, 3, base_seed=5, seed_key="crn")
    assert [r.summary() for r in ra] == [r.summary() for r in rb]


def test_spec_seed_key_covers_full_config():
    key = spec_seed_key(spec())
    d = spec().describe()
    for field in d:
        assert f'"{field}"' in key


def test_replicate_validation():
    with pytest.raises(ValueError):
        replicate(spec(), 0)


@pytest.mark.slow
def test_process_pool_matches_serial():
    serial = replicate(spec(), 3, base_seed=5, workers=0)
    pooled = replicate(spec(), 3, base_seed=5, workers=2)
    assert [r.rounds for r in serial] == [r.rounds for r in pooled]
    assert [r.total_moves for r in serial] == [r.total_moves for r in pooled]


def test_describe_roundtrip():
    d = spec().describe()
    assert d["generator"] == "uniform_slack"
    assert d["protocol"] == "qos-sampling"
    assert d["max_rounds"] == 5000
