"""experiments.common: cell + aggregation + rendering plumbing."""

import pytest

from repro.experiments.common import ExperimentResult, cell, convergence_stats


def test_cell_runs_replications():
    results = cell(
        generator="uniform_slack",
        generator_kwargs={"n": 64, "m": 8, "slack": 0.3},
        n_reps=4,
        label="common-test",
    )
    assert len(results) == 4
    assert all(r.status == "satisfying" for r in results)


def test_convergence_stats_aggregates():
    results = cell(
        generator="uniform_slack",
        generator_kwargs={"n": 64, "m": 8, "slack": 0.3},
        n_reps=5,
        label="common-test-2",
    )
    stats = convergence_stats(results)
    assert stats["n_reps"] == 5
    assert stats["satisfying_fraction"] == 1.0
    assert stats["rounds_median"] is not None
    assert stats["rounds_ci_low"] <= stats["rounds_median"] <= stats["rounds_ci_high"]
    assert stats["moves_mean"] > 0


def test_convergence_stats_handles_no_satisfying_runs():
    results = cell(
        generator="overloaded",
        generator_kwargs={"n": 40, "m": 4, "q": 4.0},
        protocol="blind-random",
        n_reps=2,
        max_rounds=20,
        label="common-test-3",
    )
    stats = convergence_stats(results)
    assert stats["satisfying_fraction"] == 0.0
    assert stats["rounds_median"] is None


def test_experiment_result_render():
    result = ExperimentResult(
        experiment_id="X0",
        title="demo",
        headers=["a", "b"],
        rows=[[1, 2.5]],
        findings=["note one"],
    )
    text = result.render()
    assert "X0: demo" in text
    assert "note one" in text
    assert "2.5" in text
