"""Engine semantics: statuses, accounting, determinism, events."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.potential import unsatisfied_count
from repro.core.protocols import (
    BestResponseProtocol,
    BlindRandomProtocol,
    PermitProtocol,
    QoSSamplingProtocol,
)
from repro.core.state import State
from repro.sim.engine import run
from repro.sim.events import ResourceFailure, ResourceRecovery, UserArrival
from repro.sim.metrics import Recorder
from repro.sim.schedule import AlphaSchedule
from repro.core.latency import IdentityLatency


def test_satisfying_run(small_uniform):
    result = run(small_uniform, QoSSamplingProtocol(), seed=1, initial="pile")
    assert result.status == "satisfying"
    assert result.converged
    assert result.n_satisfied == 12
    assert result.satisfying_round == result.rounds
    assert result.total_moves > 0


def test_already_satisfying_initial_is_zero_rounds(small_uniform):
    init = State(small_uniform, np.asarray([0, 1, 2, 3] * 3))
    result = run(small_uniform, QoSSamplingProtocol(), seed=1, initial=init)
    assert result.status == "satisfying"
    assert result.rounds == 0
    assert result.total_moves == 0


def test_quiescent_on_trap(trap_instance, trap_state):
    result = run(
        trap_instance, QoSSamplingProtocol(), seed=1, initial=trap_state
    )
    assert result.status == "quiescent"
    assert result.converged
    assert result.n_satisfied == 6


def test_max_rounds_status(trap_instance, trap_state):
    # Blind random never reports quiescence; the trap never satisfies.
    result = run(
        trap_instance,
        BlindRandomProtocol(),
        seed=1,
        initial=trap_state,
        max_rounds=50,
    )
    assert result.status == "max_rounds"
    assert not result.converged
    assert result.rounds == 50


def test_max_rounds_zero(small_uniform):
    result = run(small_uniform, QoSSamplingProtocol(), seed=1, initial="pile", max_rounds=0)
    assert result.status == "max_rounds"
    assert result.rounds == 0


def test_round_zero_satisfaction_reports_round_zero():
    # Regression: ``rounds`` fell through a truthiness test when the very
    # first satisfaction check succeeded, conflating round 0 with "never".
    inst = Instance.identical_machines([4.0] * 2, 4)
    result = run(inst, QoSSamplingProtocol(), seed=3, initial="random")
    assert result.status == "satisfying"
    assert result.satisfying_round == 0
    assert result.rounds == 0
    assert result.converged


def test_determinism_same_seed(small_uniform):
    a = run(small_uniform, QoSSamplingProtocol(), seed=77, initial="pile")
    b = run(small_uniform, QoSSamplingProtocol(), seed=77, initial="pile")
    assert a.rounds == b.rounds
    assert a.total_moves == b.total_moves
    c = run(small_uniform, QoSSamplingProtocol(), seed=78, initial="pile")
    # (different seed very likely differs in moves)
    assert (c.total_moves, c.rounds) != (a.total_moves, a.rounds) or True


def test_keep_state(small_uniform):
    result = run(
        small_uniform, QoSSamplingProtocol(), seed=1, initial="pile", keep_state=True
    )
    assert result.final_state is not None
    assert result.final_state.is_satisfying()
    assert run(small_uniform, QoSSamplingProtocol(), seed=1).final_state is None


def test_initial_callable_and_validation(small_uniform):
    def init(instance, rng):
        return State.worst_case_pile(instance, resource=1)

    result = run(small_uniform, QoSSamplingProtocol(), seed=1, initial=init)
    assert result.status == "satisfying"
    with pytest.raises(ValueError):
        run(small_uniform, QoSSamplingProtocol(), seed=1, initial="bogus")
    other = Instance.identical_machines([4.0] * 12, 4)
    foreign = State.worst_case_pile(other)
    with pytest.raises(ValueError):
        run(small_uniform, QoSSamplingProtocol(), seed=1, initial=foreign)


def test_initial_state_not_mutated(small_uniform):
    init = State.worst_case_pile(small_uniform)
    run(small_uniform, QoSSamplingProtocol(), seed=1, initial=init)
    assert init.loads[0] == 12  # the engine copied it


def test_recorder_wiring(small_uniform):
    recorder = Recorder(potentials={"unsat": unsatisfied_count})
    result = run(
        small_uniform,
        QoSSamplingProtocol(),
        seed=3,
        initial="pile",
        recorder=recorder,
    )
    traj = result.trajectory
    assert traj is not None
    assert traj.rounds == result.rounds
    assert traj.n_unsatisfied[0] > 0
    assert traj.potentials["unsat"][-1] <= traj.potentials["unsat"][0]
    assert traj.total_moves() == result.total_moves


def test_message_accounting_counts_phases(small_uniform):
    sampling = run(small_uniform, QoSSamplingProtocol(), seed=5, initial="pile")
    permit = run(small_uniform, PermitProtocol(), seed=5, initial="pile")
    # messages = unsat-active * phases each round; both start with 12 unsat.
    assert sampling.total_messages >= 12
    assert permit.total_messages >= 24


def test_alpha_schedule_slows_but_converges(small_uniform):
    sync = run(small_uniform, QoSSamplingProtocol(), seed=9, initial="pile")
    slow = run(
        small_uniform,
        QoSSamplingProtocol(),
        seed=9,
        initial="pile",
        schedule=AlphaSchedule(0.2),
    )
    assert slow.status == "satisfying"
    assert slow.rounds >= sync.rounds


def test_sequential_protocol_runs(small_uniform):
    result = run(small_uniform, BestResponseProtocol(), seed=2, initial="pile")
    assert result.status == "satisfying"
    # one move per round: rounds ~ moves
    assert result.total_moves <= result.rounds + 1


class TestEvents:
    def test_failure_then_reconvergence(self, small_uniform):
        events = [ResourceFailure(5, 3)]
        result = run(
            small_uniform,
            QoSSamplingProtocol(),
            seed=4,
            initial="pile",
            events=events,
            keep_state=True,
        )
        assert result.status == "satisfying"
        assert result.last_event_round == 5
        assert result.satisfying_round >= 5
        assert result.recovery_rounds == result.satisfying_round - 5
        # nobody remains on the dead resource
        assert result.final_state.loads[3] == 0

    def test_failure_and_recovery(self, small_uniform):
        events = [
            ResourceFailure(3, 0),
            ResourceRecovery(10, 0, IdentityLatency()),
        ]
        result = run(
            small_uniform,
            QoSSamplingProtocol(),
            seed=4,
            initial="pile",
            events=events,
        )
        assert result.status == "satisfying"
        assert result.last_event_round == 10

    def test_user_arrival_extends_population(self, small_uniform):
        events = [UserArrival(2, np.asarray([4.0, 4.0]))]
        result = run(
            small_uniform, QoSSamplingProtocol(), seed=4, initial="pile", events=events
        )
        assert result.n_users == 14
        assert result.status == "satisfying"

    def test_event_order_independence_of_input(self):
        # events given out of order are applied in round order; the
        # post-crash instance (8 users, 2 surviving resources of cap 4)
        # stays feasible.
        inst = Instance.identical_machines([4.0] * 8, 4)
        events = [ResourceFailure(8, 1), ResourceFailure(2, 0)]
        result = run(
            inst,
            QoSSamplingProtocol(),
            seed=4,
            initial="pile",
            events=events,
            keep_state=True,
        )
        assert result.status == "satisfying"
        assert result.last_event_round == 8
        assert result.final_state.loads[0] == 0
        assert result.final_state.loads[1] == 0

    def test_non_event_rejected(self, small_uniform):
        with pytest.raises(TypeError):
            run(small_uniform, QoSSamplingProtocol(), events=["not-an-event"])


# ---------------------------------------------------------------------------
# Summary schema and seed recording (result-fidelity contract).
# ---------------------------------------------------------------------------


SUMMARY_KEYS = frozenset(
    {
        "status",
        "rounds",
        "total_moves",
        "total_attempts",
        "total_messages",
        "n_satisfied",
        "n_users",
        "n_resources",
        "satisfying_round",
        "satisfied_fraction",
        "last_event_round",
        "recovery_rounds",
        "seed",
        "protocol",
        "schedule",
    }
)


class TestSummarySchema:
    def test_summary_schema_is_frozen(self, small_uniform):
        """``summary()`` carries exactly these keys — consumers (bench
        payloads, sweep rows, trace stamps) key off them by name, so a
        silent drop is a result-fidelity bug, not a cosmetic one."""
        result = run(small_uniform, QoSSamplingProtocol(), seed=5, initial="pile")
        assert set(result.summary()) == SUMMARY_KEYS

    def test_summary_event_fields_without_events(self, small_uniform):
        result = run(small_uniform, QoSSamplingProtocol(), seed=5, initial="pile")
        s = result.summary()
        assert s["last_event_round"] is None
        assert s["recovery_rounds"] is None

    def test_summary_event_fields_with_events(self, small_uniform):
        events = [UserArrival(2, np.asarray([8.0]))]
        result = run(
            small_uniform, QoSSamplingProtocol(), seed=4, initial="pile", events=events
        )
        s = result.summary()
        assert s["last_event_round"] == 2
        assert s["recovery_rounds"] == result.recovery_rounds
        assert s["recovery_rounds"] is not None and s["recovery_rounds"] >= 0


class TestSeedRecording:
    def test_numpy_integer_seed_is_recorded(self, small_uniform):
        # Regression: seeds that are numpy integers (the sweep layer hands
        # these out) were recorded as None, breaking replay-from-summary.
        result = run(small_uniform, QoSSamplingProtocol(), seed=np.int64(7), initial="pile")
        assert result.seed == 7
        assert isinstance(result.seed, int) and not isinstance(result.seed, bool)

    def test_recorded_numpy_seed_replays(self, small_uniform):
        a = run(small_uniform, QoSSamplingProtocol(), seed=np.uint32(19), initial="pile")
        assert a.seed == 19
        b = run(small_uniform, QoSSamplingProtocol(), seed=a.seed, initial="pile")
        assert a.summary() == b.summary()

    def test_generator_seed_still_records_none(self, small_uniform):
        result = run(
            small_uniform,
            QoSSamplingProtocol(),
            seed=np.random.default_rng(3),
            initial="pile",
        )
        assert result.seed is None
