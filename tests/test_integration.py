"""End-to-end integration: generators -> protocols -> analysis agree."""

import numpy as np
import pytest

from repro.analysis.convergence import sustained_convergence_round
from repro.analysis.stats import summarize
from repro.baselines.centralized import opt_satisfied, optimal_assignment
from repro.core.potential import overload_potential
from repro.core.protocols import (
    BestResponseProtocol,
    PermitProtocol,
    QoSSamplingProtocol,
    SweepBestResponse,
)
from repro.core.stability import is_stable
from repro.msgsim.runner import run_message_sim
from repro.sim.engine import run
from repro.sim.events import ResourceFailure
from repro.sim.metrics import Recorder
from repro.sim.parallel import RunSpec, replicate
from repro.workloads.generators import (
    mm1_farm,
    related_speeds,
    uniform_slack,
    zipf_thresholds,
)

ALL_PROTOCOLS = [
    QoSSamplingProtocol,
    PermitProtocol,
    BestResponseProtocol,
    SweepBestResponse,
]


@pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS, ids=lambda c: c.__name__)
def test_every_protocol_solves_generous_uniform(protocol_cls):
    inst = uniform_slack(200, 16, 0.25)
    result = run(inst, protocol_cls(), seed=7, initial="pile", max_rounds=20_000)
    assert result.status == "satisfying"
    # and agrees with the centralized optimum's existence
    assert optimal_assignment(inst).is_satisfying()


@pytest.mark.parametrize(
    "make",
    [
        lambda: related_speeds(200, 16, rng=1),
        lambda: mm1_farm(200, 16, rng=1),
        lambda: zipf_thresholds(200, 16, rng=1),
    ],
    ids=["related", "mm1", "zipf"],
)
def test_heterogeneous_instances_converge_or_stabilise(make):
    inst = make()
    result = run(
        inst, QoSSamplingProtocol(), seed=3, initial="pile", max_rounds=50_000
    )
    assert result.converged
    assert result.satisfied_fraction > 0.9


def test_final_states_of_improvement_protocols_are_stable():
    inst = zipf_thresholds(150, 12, rng=5)
    for protocol in (QoSSamplingProtocol(), BestResponseProtocol(polite=False)):
        result = run(
            inst, protocol, seed=9, initial="random", max_rounds=50_000, keep_state=True
        )
        assert result.converged
        assert is_stable(result.final_state)


def test_trajectory_potential_is_supermartingale_ish():
    """Overload potential ends at zero and the recorded trajectory's
    sustained convergence matches the engine's round count."""
    inst = uniform_slack(300, 16, 0.15)
    recorder = Recorder(potentials={"overload": overload_potential})
    result = run(
        inst,
        QoSSamplingProtocol(),
        seed=11,
        initial="pile",
        recorder=recorder,
    )
    traj = result.trajectory
    assert result.status == "satisfying"
    assert traj.potentials["overload"][-1] >= 0
    sustained = sustained_convergence_round(traj, sustain=1)
    # the engine stops one boundary after the last acting round
    assert sustained is None or sustained <= result.rounds


def test_failure_injection_end_to_end():
    inst = uniform_slack(256, 16, 0.3)
    events = [ResourceFailure(40, r) for r in (0, 1)]
    result = run(
        inst,
        QoSSamplingProtocol(),
        seed=13,
        initial="random",
        events=events,
        keep_state=True,
    )
    assert result.status == "satisfying"
    assert result.final_state.loads[0] == 0
    assert result.final_state.loads[1] == 0
    assert result.recovery_rounds is not None


def test_replicated_summaries_are_sane():
    spec = RunSpec(
        generator="uniform_slack",
        generator_kwargs={"n": 256, "m": 16, "slack": 0.2},
        protocol="permit",
        initial="pile",
        label="integration",
    )
    results = replicate(spec, 6, base_seed=3)
    rounds = [r.rounds for r in results if r.status == "satisfying"]
    assert len(rounds) == 6
    s = summarize(np.asarray(rounds, dtype=float))
    assert s.minimum >= 1
    assert s.maximum < 50


def test_engine_and_msgsim_agree_on_satisfiability():
    inst = uniform_slack(128, 8, 0.25)
    eng = run(inst, QoSSamplingProtocol(), seed=21, initial="pile")
    msg = run_message_sim(inst, seed=21, initial="pile", max_time=500.0)
    assert eng.status == "satisfying"
    assert msg.status == "satisfying"
    # migration effort within a small factor of each other
    assert 0.25 <= (msg.total_moves + 1) / (eng.total_moves + 1) <= 4.0


def test_infeasible_instance_consistency():
    from repro.workloads.generators import overloaded

    inst = overloaded(100, 8, 8.0)
    opt = opt_satisfied(inst)
    assert opt.n_satisfied == 7 * 8
    result = run(
        inst, PermitProtocol(), seed=5, initial="pile", max_rounds=10_000
    )
    assert result.status == "quiescent"
    assert result.n_satisfied <= opt.n_satisfied
