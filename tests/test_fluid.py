"""Fluid (mean-field) model and Wardrop equilibria."""

import numpy as np
import pytest

from repro.core.latency import (
    IdentityLatency,
    LatencyProfile,
    MM1Latency,
)
from repro.fluid.model import FluidSystem, run_fluid
from repro.fluid.wardrop import satisfied_mass_at, wardrop_equilibrium


def make_system(m=16, theta=0.1, p=0.5):
    return FluidSystem(
        m=m, thetas=np.asarray([theta]), masses=np.asarray([1.0]), p=p
    )


class TestFluidSystem:
    def test_validation(self):
        with pytest.raises(ValueError):
            FluidSystem(m=0, thetas=np.asarray([0.1]), masses=np.asarray([1.0]))
        with pytest.raises(ValueError):
            FluidSystem(m=4, thetas=np.asarray([-0.1]), masses=np.asarray([1.0]))
        with pytest.raises(ValueError):
            FluidSystem(m=4, thetas=np.asarray([0.1]), masses=np.asarray([0.5]))
        with pytest.raises(ValueError):
            FluidSystem(
                m=4, thetas=np.asarray([0.1]), masses=np.asarray([1.0]), p=0.0
            )

    def test_mass_conservation(self):
        system = make_system()
        x = system.pile_state()
        for _ in range(50):
            x = system.step(x)
            assert x.sum() == pytest.approx(1.0)
            assert np.all(x >= -1e-15)

    def test_satisfying_states_are_fixed_points(self):
        system = make_system(m=4, theta=0.3)
        x = system.uniform_state()  # loads 0.25 < 0.3: all satisfied
        assert system.total_unsatisfied(x) == 0.0
        assert np.allclose(system.step(x), x)

    def test_pile_drains_with_slack(self):
        # theta = 1.25 / m: 25% fluid slack.
        system = make_system(m=16, theta=1.25 / 16)
        traj = run_fluid(system, initial="pile", eps=1e-9)
        assert traj.unsatisfied[0] == pytest.approx(1.0)
        assert traj.unsatisfied[-1] <= 1e-9
        # monotone decrease (uniform threshold: no fluid overshoot can
        # increase the unsatisfied mass once accepting capacity exists)
        diffs = np.diff(traj.unsatisfied)
        assert np.all(diffs <= 1e-12)

    def test_two_classes(self):
        system = FluidSystem(
            m=8,
            thetas=np.asarray([0.2, 0.5]),
            masses=np.asarray([0.5, 0.5]),
            p=0.5,
        )
        traj = run_fluid(system, initial="pile", eps=1e-9)
        assert traj.unsatisfied[-1] <= 1e-9
        assert traj.final_state.shape == (8, 2)

    def test_run_fluid_validation(self):
        system = make_system()
        with pytest.raises(ValueError):
            run_fluid(system, initial=np.zeros((3, 1)))
        with pytest.raises(ValueError):
            run_fluid(system, initial=np.zeros((16, 1)))  # mass 0 != 1


class TestFluidMatchesDiscrete:
    def test_trajectory_agreement_at_large_n(self):
        """The headline validation: n = 32000 matches the fluid map to
        a few parts in a thousand, round by round."""
        import math

        import repro
        from repro.sim.metrics import Recorder

        n, m, slack = 32000, 32, 0.25
        q = math.ceil(n / (m * (1 - slack)))
        system = FluidSystem(
            m=m, thetas=np.asarray([q / n]), masses=np.asarray([1.0]), p=0.5
        )
        fluid = run_fluid(system, initial="pile", eps=0.0, max_rounds=50)
        recorder = Recorder()
        repro.run(
            repro.workloads.uniform_slack(n, m, slack),
            repro.QoSSamplingProtocol(),
            seed=1,
            initial="pile",
            recorder=recorder,
        )
        discrete = recorder.finalize().n_unsatisfied / n
        horizon = min(discrete.size, fluid.rounds - 1)
        dev = np.max(
            np.abs(discrete[:horizon] - fluid.unsatisfied[1 : horizon + 1])
        )
        assert dev < 0.01


class TestWardrop:
    def test_related_machines_proportional(self):
        profile = LatencyProfile.related([1.0, 2.0, 4.0])
        flow = wardrop_equilibrium(profile, 7.0)
        assert np.allclose(flow.loads, [1.0, 2.0, 4.0], atol=1e-6)
        assert flow.level == pytest.approx(1.0, abs=1e-6)

    def test_equalised_latencies_on_used_resources(self):
        profile = LatencyProfile(
            [IdentityLatency(), IdentityLatency(), MM1Latency(5.0)]
        )
        flow = wardrop_equilibrium(profile, 6.0)
        lat = profile.evaluate(flow.loads)
        used = flow.loads > 1e-9
        assert np.allclose(lat[used], flow.level, rtol=1e-5)
        assert flow.total == pytest.approx(6.0)

    def test_unused_expensive_resource(self):
        from repro.core.latency import AffineLatency

        # offset 10 keeps this resource empty at low levels.
        profile = LatencyProfile([IdentityLatency(), AffineLatency(1.0, 10.0)])
        flow = wardrop_equilibrium(profile, 3.0)
        assert flow.loads[1] == pytest.approx(0.0, abs=1e-9)
        assert flow.loads[0] == pytest.approx(3.0)

    def test_zero_mass(self):
        profile = LatencyProfile.identical(3)
        flow = wardrop_equilibrium(profile, 0.0)
        assert flow.total == 0.0

    def test_unabsorbable_mass_raises(self):
        profile = LatencyProfile([MM1Latency(2.0)])
        with pytest.raises(ValueError):
            wardrop_equilibrium(profile, 5.0)  # mu = 2 < mass

    def test_satisfied_mass_under_thresholds(self):
        profile = LatencyProfile.identical(4)
        flow = wardrop_equilibrium(profile, 8.0)  # loads 2 each, latency 2
        full = satisfied_mass_at(
            flow, profile, np.asarray([3.0]), np.asarray([1.0])
        )
        none = satisfied_mass_at(
            flow, profile, np.asarray([1.0]), np.asarray([1.0])
        )
        assert full == pytest.approx(1.0)
        assert none == pytest.approx(0.0)
        mixed = satisfied_mass_at(
            flow, profile, np.asarray([3.0, 1.0]), np.asarray([0.25, 0.75])
        )
        assert mixed == pytest.approx(0.25)

    def test_balancing_is_wrong_under_scarcity_fluid_face(self):
        """Fluid version of T4: Wardrop satisfies nobody at 1.5x overload
        while the QoS capacity could satisfy most of the mass."""
        profile = LatencyProfile.identical(8)
        q = 2.0
        mass = 1.5 * 8 * q  # 24 mass on 16 QoS capacity
        flow = wardrop_equilibrium(profile, mass)
        sat = satisfied_mass_at(flow, profile, np.asarray([q]), np.asarray([1.0]))
        assert sat == pytest.approx(0.0)
