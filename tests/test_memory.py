"""The memory/dtype contract: narrowing, chunking, CSR access maps.

Companion to the wide-vs-narrow grid in ``tests/test_batch.py``: that
grid proves whole trajectories are dtype-invariant; this module pins the
contract pieces individually — :func:`index_dtype` boundaries, chunk
iteration semantics, the CSR-first ``AccessMap`` construction paths and
their validation errors — plus the million-user smoke cell (stress).
"""

import numpy as np
import pytest

from repro.core.instance import AccessMap, Instance
from repro.core.memory import (
    index_dtype,
    iter_chunks,
    set_user_chunk,
    user_chunk,
    wide_dtypes,
)
from repro.core.protocols import QoSSamplingProtocol
from repro.registry import build_instance
from repro.sim.batch import run_batch
from repro.sim.engine import run


# ---------------------------------------------------------------------------
# index_dtype: boundaries and the wide-mode hook.
# ---------------------------------------------------------------------------


class TestIndexDtype:
    @pytest.mark.parametrize(
        "bound,expected",
        [
            (0, np.int16),
            (1, np.int16),
            (2**15, np.int16),
            (2**15 + 1, np.int32),
            (2**31, np.int32),
            (2**31 + 1, np.int64),
            (10**12, np.int64),
        ],
    )
    def test_boundaries(self, bound, expected):
        assert index_dtype(bound) == np.dtype(expected)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            index_dtype(-1)

    def test_wide_mode_forces_int64_and_restores(self):
        assert index_dtype(4) == np.dtype(np.int16)
        with wide_dtypes():
            assert index_dtype(4) == np.dtype(np.int64)
            with wide_dtypes():  # re-entrant
                assert index_dtype(4) == np.dtype(np.int64)
            assert index_dtype(4) == np.dtype(np.int64)
        assert index_dtype(4) == np.dtype(np.int16)

    def test_wide_mode_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with wide_dtypes():
                raise RuntimeError("boom")
        assert index_dtype(4) == np.dtype(np.int16)


# ---------------------------------------------------------------------------
# Chunk iteration.
# ---------------------------------------------------------------------------


class TestChunks:
    def test_spans_tile_exactly(self):
        prev = set_user_chunk(7)
        try:
            spans = list(iter_chunks(23))
            assert spans == [(0, 7), (7, 14), (14, 21), (21, 23)]
            assert list(iter_chunks(7)) == [(0, 7)]
            assert list(iter_chunks(3)) == [(0, 3)]
            assert list(iter_chunks(0)) == []
        finally:
            set_user_chunk(prev)

    def test_set_returns_previous_and_rejects_nonpositive(self):
        prev = set_user_chunk(64)
        try:
            assert set_user_chunk(prev) == 64
            assert user_chunk() == prev
            with pytest.raises(ValueError):
                set_user_chunk(0)
        finally:
            set_user_chunk(prev)

    def test_tiny_chunk_is_trajectory_neutral(self):
        """Forcing many blocks on a small instance changes nothing — the
        chunked kernels are elementwise, so block boundaries are invisible."""
        inst = build_instance("random_access", n=48, m=8, degree=4, slack=0.4, rng=3)

        def legs():
            ref = run(
                inst,
                QoSSamplingProtocol(),
                seed=np.random.default_rng(17),
                max_rounds=400,
                initial="pile",
                keep_state=True,
            )
            batch = run_batch(
                inst,
                QoSSamplingProtocol(),
                seeds=[np.random.default_rng(17)],
                max_rounds=400,
                initial="pile",
            )
            return ref, batch

        ref_a, batch_a = legs()
        prev = set_user_chunk(7)
        try:
            ref_b, batch_b = legs()
        finally:
            set_user_chunk(prev)
        assert ref_a.summary() == ref_b.summary()
        assert np.array_equal(
            ref_a.final_state.assignment, ref_b.final_state.assignment
        )
        assert batch_a.statuses == batch_b.statuses
        assert np.array_equal(batch_a.final_assignment, batch_b.final_assignment)


# ---------------------------------------------------------------------------
# CSR-first AccessMap: construction paths agree, validation stays loud.
# ---------------------------------------------------------------------------


class TestAccessMapCSR:
    def test_from_csr_matches_list_constructor(self):
        allowed = [[0, 2], [1], [0, 1, 3], [3]]
        via_list = AccessMap(allowed, 4)
        choices = np.asarray([0, 2, 1, 0, 1, 3, 3])
        offsets = np.asarray([0, 2, 3, 6, 7])
        via_csr = AccessMap.from_csr(choices, offsets, 4)
        assert np.array_equal(via_list.choices, via_csr.choices)
        assert np.array_equal(via_list.offsets, via_csr.offsets)
        assert via_list.n_users == via_csr.n_users == 4
        for u, opts in enumerate(allowed):
            for r in range(4):
                assert via_csr.contains_one(u, r) == (r in opts)

    def test_from_csr_validation(self):
        offsets = np.asarray([0, 2, 4])
        with pytest.raises(ValueError, match="no accessible resource"):
            AccessMap.from_csr(np.asarray([0, 1]), np.asarray([0, 2, 2]), 4)
        with pytest.raises(ValueError, match="out-of-range"):
            AccessMap.from_csr(np.asarray([0, 1, 2, 4]), offsets, 4)
        with pytest.raises(ValueError, match="duplicate"):
            AccessMap.from_csr(np.asarray([0, 0, 1, 2]), offsets, 4)
        with pytest.raises(ValueError, match="sorted ascending"):
            AccessMap.from_csr(np.asarray([0, 1, 2, 1]), offsets, 4)

    def test_narrowed_keys_dtype(self):
        amap = AccessMap([[0, 1], [1, 2]], 3)
        assert amap.choices.dtype == index_dtype(3)
        with wide_dtypes():
            wide = AccessMap([[0, 1], [1, 2]], 3)
        assert wide.choices.dtype == np.dtype(np.int64)
        # membership answers are identical either way
        users = np.asarray([0, 0, 1, 1])
        targets = np.asarray([1, 2, 0, 2])
        assert np.array_equal(amap.contains(users, targets), wide.contains(users, targets))

    def test_contains_out_of_range_queries_are_false(self):
        amap = AccessMap([[0, 1], [1, 2]], 3)
        users = np.asarray([-1, 2, 0, 1, 0])
        targets = np.asarray([0, 0, -1, 3, 1])
        expected = np.asarray([False, False, False, False, True])
        assert np.array_equal(amap.contains(users, targets), expected)
        assert not amap.contains_one(-1, 0)
        assert not amap.contains_one(2, 0)
        assert not amap.contains_one(0, 3)
        assert not amap.contains_one(0, -1)

    def test_complete_map_is_csr_native(self):
        amap = AccessMap.complete(5, 3)
        assert amap.n_users == 5 and amap.n_resources == 3
        assert np.array_equal(amap.offsets, np.arange(6) * 3)
        assert amap.contains(np.arange(5), np.zeros(5, dtype=int)).all()


# ---------------------------------------------------------------------------
# sparse_access generator: CSR-native, deterministic, valid.
# ---------------------------------------------------------------------------


class TestSparseAccess:
    def test_deterministic_and_valid(self):
        a = build_instance("sparse_access", n=64, m=16, degree=4, rng=5)
        b = build_instance("sparse_access", n=64, m=16, degree=4, rng=5)
        assert np.array_equal(a.access.choices, b.access.choices)
        counts = np.diff(a.access.offsets)
        assert (counts == 4).all()
        # per-user strictly ascending (no duplicates survived rejection)
        for u in range(64):
            lo, hi = a.access.offsets[u], a.access.offsets[u + 1]
            assert (np.diff(a.access.choices[lo:hi]) > 0).all()

    def test_runs_to_satisfaction(self):
        inst = build_instance("sparse_access", n=64, m=8, degree=3, slack=0.4, rng=1)
        result = run(inst, QoSSamplingProtocol(), seed=2, initial="pile", max_rounds=2000)
        assert result.status == "satisfying"


# ---------------------------------------------------------------------------
# Million-user smoke (stress: excluded from the blocking tier-1 job).
# ---------------------------------------------------------------------------


@pytest.mark.stress
def test_huge_cell_fits_memory_ceiling():
    """One n = 10^6 replication completes, satisfies, and stays inside the
    pinned memory ceiling — the CI guardrail runs this same cell via
    ``python -m repro bench --only engine/huge``."""
    from repro.bench import HUGE_CELLS, _time_huge_cell

    payload = _time_huge_cell(HUGE_CELLS[0])
    assert payload["status"] == "satisfying"
    assert payload["within_ceiling"], (
        f"peak {payload['peak_traced_bytes']:,} B over ceiling "
        f"{payload['memory_ceiling_bytes']:,} B"
    )
