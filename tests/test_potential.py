"""Potential functions: definitions, exactness, bounded differences."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.latency import LatencyProfile, MM1Latency
from repro.core.potential import (
    overload_potential,
    rosenthal_potential,
    unsatisfied_count,
    violation_mass,
)
from repro.core.state import State

from conftest import random_small_instance


def test_unsatisfied_count(small_uniform):
    state = State(small_uniform, np.asarray([0] * 6 + [1] * 3 + [2] * 3))
    assert unsatisfied_count(state) == 6.0
    sat = State(small_uniform, np.asarray([0, 1, 2, 3] * 3))
    assert unsatisfied_count(sat) == 0.0


class TestOverloadPotential:
    def test_zero_iff_satisfying_on_random_states(self):
        rng = np.random.default_rng(3)
        for _ in range(80):
            inst = random_small_instance(rng)
            state = State.uniform_random(inst, rng)
            phi = overload_potential(state)
            assert phi >= 0
            assert (phi == 0) == state.is_satisfying(), (
                inst.thresholds,
                state.assignment,
            )

    def test_counts_minimum_evictions(self):
        # q = [1, 5, 5] all on one machine (m=2): keep the two q=5 users
        # (load 2 <= 5)?  At load 3 even they are fine (3 <= 5) but the q=1
        # is not; evicting just it leaves load 2 <= 5: overload = 1.
        inst = Instance.identical_machines([1.0, 5.0, 5.0], 2)
        state = State(inst, np.asarray([0, 0, 0]))
        assert overload_potential(state) == 1.0

    def test_keeps_high_thresholds(self):
        # q = [2, 2, 2, 9] on one machine: keepable = 2 (load 2 <= 2 needs
        # dropping 2 users; the q=9 plus one q=2).
        inst = Instance.identical_machines([2.0, 2.0, 2.0, 9.0], 2)
        state = State(inst, np.asarray([0] * 4))
        assert overload_potential(state) == 2.0

    def test_bounded_difference_under_single_moves(self):
        """|Phi(after one migration) - Phi(before)| <= 2 for unit weights.

        The mover changes two groups by one member each; each group's
        keepable count changes by at most one.
        """
        rng = np.random.default_rng(31)
        for _ in range(60):
            inst = random_small_instance(rng, max_n=8, max_m=3)
            if inst.n_resources < 2:
                continue
            state = State.uniform_random(inst, rng)
            before = overload_potential(state)
            u = int(rng.integers(0, inst.n_users))
            r = int(rng.integers(0, inst.n_resources))
            state.move_user(u, r)
            after = overload_potential(state)
            assert abs(after - before) <= 2.0 + 1e-9

    def test_requires_unit_weights(self):
        inst = Instance(
            thresholds=np.asarray([2.0]),
            latencies=LatencyProfile.identical(1),
            weights=np.asarray([2.0]),
        )
        with pytest.raises(NotImplementedError):
            overload_potential(State(inst, np.asarray([0])))


class TestViolationMass:
    def test_zero_iff_satisfying(self, small_uniform):
        sat = State(small_uniform, np.asarray([0, 1, 2, 3] * 3))
        assert violation_mass(sat) == 0.0
        pile = State.worst_case_pile(small_uniform)
        assert violation_mass(pile) == pytest.approx(12 * (12 - 4))

    def test_finite_on_saturated_resources(self):
        inst = Instance(
            thresholds=np.asarray([1.0, 1.0]),
            latencies=LatencyProfile([MM1Latency(1.5)]),
        )
        state = State(inst, np.asarray([0, 0]))  # load 2 > mu: latency inf
        mass = violation_mass(state)
        assert np.isfinite(mass)
        assert mass == pytest.approx(2.0)  # capped at q.max() per user


class TestRosenthal:
    def test_exact_potential_property(self):
        """A unilateral move changes Rosenthal's potential by exactly the
        mover's latency change (computed at post-move loads)."""
        rng = np.random.default_rng(41)
        for _ in range(50):
            inst = random_small_instance(rng, max_n=7, max_m=3)
            if inst.n_resources < 2:
                continue
            state = State.uniform_random(inst, rng)
            u = int(rng.integers(0, inst.n_users))
            src = int(state.assignment[u])
            dst = int(rng.integers(0, inst.n_resources))
            if dst == src:
                continue
            before_phi = rosenthal_potential(state)
            lat_before = float(state.user_latencies()[u])
            state.move_user(u, dst)
            after_phi = rosenthal_potential(state)
            lat_after = float(state.user_latencies()[u])
            assert after_phi - before_phi == pytest.approx(lat_after - lat_before)

    def test_value_on_known_state(self):
        inst = Instance.identical_machines([9.0] * 4, 2)
        state = State(inst, np.asarray([0, 0, 0, 1]))
        # r0: 1+2+3 = 6; r1: 1.
        assert rosenthal_potential(state) == pytest.approx(7.0)
