"""Feasibility theory: greedy exactness, OPT_sat, slack."""

import numpy as np
import pytest

from repro.core.feasibility import (
    additive_slack,
    brute_force_assignment,
    greedy_assignment,
    is_feasible,
    is_pointwise_ordered,
    max_satisfied,
    max_satisfied_brute_force,
    multiplicative_slack,
    segment_dp_assignment,
)
from repro.core.instance import AccessMap, Instance
from repro.core.latency import AffineLatency, LatencyProfile

from conftest import random_small_instance


class TestPointwiseOrder:
    def test_identical_and_related_are_ordered(self, small_uniform, related_instance):
        assert is_pointwise_ordered(small_uniform)
        assert is_pointwise_ordered(related_instance)

    def test_crossing_affine_not_ordered(self):
        # slopes/offsets cross: (1x + 0) vs (0.5x + 2) cross at x = 4.
        inst = Instance(
            thresholds=np.full(6, 5.0),
            latencies=LatencyProfile([AffineLatency(1.0), AffineLatency(0.5, 2.0)]),
        )
        assert not is_pointwise_ordered(inst)


class TestGreedyExactness:
    def test_matches_brute_force_on_random_identical_instances(self):
        rng = np.random.default_rng(7)
        for _ in range(150):
            inst = random_small_instance(rng)
            greedy = greedy_assignment(inst)
            brute = brute_force_assignment(inst)
            assert greedy.exact
            assert greedy.feasible == brute.feasible, inst.thresholds
            if greedy.feasible:
                assert greedy.state is not None and greedy.state.is_satisfying()

    def test_greedy_success_is_exact_witness_on_related_machines(self):
        rng = np.random.default_rng(11)
        for _ in range(80):
            n = int(rng.integers(1, 6))
            m = int(rng.integers(1, 4))
            speeds = rng.choice([0.5, 1.0, 2.0], size=m)
            thresholds = rng.integers(1, 7, size=n).astype(np.float64)
            inst = Instance.related_machines(thresholds, speeds)
            greedy = greedy_assignment(inst)
            brute = brute_force_assignment(inst)
            if greedy.feasible:
                assert brute.feasible and greedy.state.is_satisfying()
            elif greedy.exact:
                assert not brute.feasible

    def test_greedy_counterexample_on_related_machines(self):
        # Feasible, but greedy fails and must say so inconclusively.
        inst = Instance.related_machines([3.0, 3.0, 1.0], [2.0, 0.5])
        greedy = greedy_assignment(inst)
        assert not greedy.feasible and not greedy.exact
        assert brute_force_assignment(inst).feasible

    def test_segment_dp_matches_brute_force_on_related_machines(self):
        rng = np.random.default_rng(11)
        for _ in range(120):
            n = int(rng.integers(1, 7))
            m = int(rng.integers(1, 4))
            speeds = rng.choice([0.5, 1.0, 2.0, 3.0], size=m)
            thresholds = rng.integers(1, 8, size=n).astype(np.float64)
            inst = Instance.related_machines(thresholds, speeds)
            dp = segment_dp_assignment(inst)
            brute = brute_force_assignment(inst)
            assert dp.exact
            assert dp.feasible == brute.feasible, (thresholds, speeds)
            if dp.feasible:
                assert dp.state is not None and dp.state.is_satisfying()

    def test_segment_dp_matches_brute_force_on_mixed_profiles(self):
        from repro.core.latency import MM1Latency, PolynomialLatency

        rng = np.random.default_rng(13)
        pool = [AffineLatency(1.0), AffineLatency(0.5, 2.0), MM1Latency(5.0),
                PolynomialLatency(degree=2)]
        for _ in range(80):
            n = int(rng.integers(1, 6))
            m = int(rng.integers(1, 4))
            fns = [pool[int(i)] for i in rng.integers(0, len(pool), size=m)]
            thresholds = rng.integers(1, 9, size=n).astype(np.float64)
            inst = Instance(thresholds=thresholds, latencies=LatencyProfile(fns))
            dp = segment_dp_assignment(inst)
            brute = brute_force_assignment(inst)
            assert dp.feasible == brute.feasible

    def test_segment_dp_state_limit(self):
        inst = Instance.related_machines([2.0] * 10, [1.0, 2.0, 3.0, 4.0])
        with pytest.raises(ValueError):
            segment_dp_assignment(inst, state_limit=3)

    def test_known_feasible(self):
        inst = Instance.identical_machines([2.0, 2.0, 1.0], 2)
        res = greedy_assignment(inst)
        assert res.feasible and res.state.is_satisfying()

    def test_known_infeasible(self):
        # Three users needing an empty-but-for-them resource, two machines.
        inst = Instance.identical_machines([1.0, 1.0, 1.0], 2)
        res = greedy_assignment(inst)
        assert res.exact and not res.feasible

    def test_requires_unit_weights(self):
        inst = Instance(
            thresholds=np.asarray([2.0, 2.0]),
            latencies=LatencyProfile.identical(2),
            weights=np.asarray([1.0, 2.0]),
        )
        with pytest.raises(NotImplementedError):
            greedy_assignment(inst)

    def test_requires_complete_access(self):
        inst = Instance(
            thresholds=np.asarray([2.0, 2.0]),
            latencies=LatencyProfile.identical(2),
            access=AccessMap([[0], [1]], 2),
        )
        with pytest.raises(NotImplementedError):
            greedy_assignment(inst)


class TestIsFeasible:
    def test_identical(self):
        assert is_feasible(Instance.identical_machines([2.0, 2.0, 2.0, 2.0], 2))
        assert not is_feasible(Instance.identical_machines([1.0] * 3, 2))

    def test_non_ordered_small_falls_back_to_brute_force(self):
        inst = Instance(
            thresholds=np.asarray([2.5, 2.5, 2.5]),
            latencies=LatencyProfile([AffineLatency(1.0), AffineLatency(0.5, 2.0)]),
        )
        # Whatever the answer, it must be authoritative (no exception).
        assert isinstance(is_feasible(inst), bool)


class TestMaxSatisfied:
    def test_matches_brute_force_on_random_instances(self):
        rng = np.random.default_rng(23)
        for _ in range(120):
            inst = random_small_instance(rng, max_n=6, max_m=3, max_q=5)
            exact = max_satisfied(inst)
            brute = max_satisfied_brute_force(inst)
            assert exact.exact
            assert exact.n_satisfied == brute.n_satisfied, inst.thresholds
            assert exact.state is not None
            assert exact.state.n_satisfied == exact.n_satisfied

    def test_feasible_instance_satisfies_all(self, small_uniform):
        res = max_satisfied(small_uniform)
        assert res.n_satisfied == small_uniform.n_users

    def test_overloaded_uniform_formula(self):
        # n > m*q with uniform thresholds: OPT_sat = (m-1)*q.
        m, q = 4, 3
        for n in (13, 15, 20):
            inst = Instance.identical_machines([float(q)] * n, m)
            res = max_satisfied(inst)
            assert res.n_satisfied == (m - 1) * q

    def test_docstring_example(self):
        # thresholds [5,1,1,1,1,1], m=2: OPT is 2 (big user absorbs fillers).
        inst = Instance.identical_machines([5.0, 1, 1, 1, 1, 1], 2)
        res = max_satisfied(inst)
        assert res.exact
        assert res.n_satisfied == 2

    def test_feasible_related_instance_via_greedy_path(self):
        # 3 machines at speed 1 (cap 2 each) + 2 at speed 4 (cap 8 each)
        # hold 22 users at q = 2.
        inst = Instance.related_machines([2.0] * 22, [1.0] * 3 + [4.0] * 2)
        res = max_satisfied(inst)
        assert res.n_satisfied == 22

    def test_heuristic_lower_bound_on_infeasible_related(self):
        inst = Instance.related_machines([2.0] * 40, [1.0] * 3 + [2.0] * 2)
        res = max_satisfied(inst)
        assert not res.exact
        assert 0 < res.n_satisfied < 40
        assert res.state is not None
        assert res.state.n_satisfied == res.n_satisfied


class TestSlack:
    def test_multiplicative_slack_uniform(self):
        # q=4, n=8, m=4: can tighten to q'=2 => eps = 0.5.
        inst = Instance.identical_machines([4.0] * 8, 4)
        eps = multiplicative_slack(inst, tol=1e-3)
        assert eps == pytest.approx(0.5, abs=5e-3)

    def test_zero_slack_when_tight(self):
        inst = Instance.identical_machines([2.0] * 8, 4)
        assert multiplicative_slack(inst) == pytest.approx(0.0, abs=5e-3)

    def test_infeasible_slack_is_zero(self):
        inst = Instance.identical_machines([1.0] * 3, 2)
        assert multiplicative_slack(inst) == 0.0
        assert additive_slack(inst) == 0.0

    def test_additive_slack(self):
        # q=4, need q' >= 2: delta just under 2.
        inst = Instance.identical_machines([4.0] * 8, 4)
        delta = additive_slack(inst, tol=1e-3)
        assert delta == pytest.approx(2.0, abs=5e-3)


def test_brute_force_limit():
    inst = Instance.identical_machines([2.0] * 30, 4)
    with pytest.raises(ValueError):
        brute_force_assignment(inst, limit=10)
