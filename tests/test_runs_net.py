"""The distributed sweep backend: ``repro.runs.protocol`` + ``repro.runs.net``.

Pins the acceptance criteria of the network scheduler:

1. **wire fidelity** — a cell surviving the JSON round trip keys
   identically (tuples become lists, canonical-JSON keys don't care),
   and the ``runs-net/v1`` schema string is frozen;
2. **bit identity** — a sweep sharded over ≥2 TCP workers produces a
   store bit-identical (modulo provenance/duration/telemetry) to the
   single-machine scheduler, including across real worker subprocesses;
3. **robustness** — torn/garbage/oversized frames earn ``error``
   replies without killing the coordinator; duplicate result delivery
   is idempotent (one store commit, one journal ``finished``); a worker
   that stops heartbeating loses its lease to the reaper and the cell
   re-queues; a worker whose socket dies re-queues immediately; retries
   exhausted journal ``failed`` and the sweep completes anyway;
4. **crash-safe coordination** — re-serving (or locally resuming) an
   interrupted distributed sweep runs exactly the unfinished cells, and
   the journal shows every cell executed exactly once.
"""

from __future__ import annotations

import io
import json
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.runs import (
    Coordinator,
    FrameError,
    Journal,
    MAX_FRAME_BYTES,
    NET_SCHEMA,
    ResultStore,
    cell_from_wire,
    cell_key,
    cell_to_wire,
    execute_cell,
    read_journal,
    read_workers,
    recv_frame,
    run_sweep,
    run_worker,
    send_frame,
    serve_sweep,
)
from repro.runs.net import parse_address
from repro.runs.watch import render_watch, sweep_snapshot

from test_runs import F1_OVERRIDES, tiny_cell


def strip_volatile(payload):
    payload = dict(payload)
    payload.pop("provenance", None)
    payload.pop("duration_s", None)
    payload.pop("telemetry", None)
    return payload


def assert_stores_identical(a: ResultStore, b: ResultStore):
    assert a.keys() == b.keys() and a.keys()
    for key in a.keys():
        assert strip_volatile(a.get(key)) == strip_volatile(b.get(key)), key


class RawClient:
    """A hand-rolled protocol client for robustness tests (no run_worker
    conveniences, so tests can misbehave: skip heartbeats, resend
    results, ship garbage, vanish mid-lease)."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30.0)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def request(self, message):
        send_frame(self.wfile, message)
        return recv_frame(self.rfile)

    def register(self):
        import os

        reply = self.request(
            {"type": "register", "schema": NET_SCHEMA, "host": "test", "pid": os.getpid()}
        )
        assert reply["type"] == "welcome"
        return reply

    def send_raw(self, data: bytes):
        self.wfile.write(data)
        self.wfile.flush()

    def close(self):
        # makefile() handles keep the fd referenced — close them too, or
        # the peer never sees FIN (a SIGKILLed process closes everything).
        self.rfile.close()
        self.wfile.close()
        self.sock.close()


@pytest.fixture
def coordinator(tmp_path):
    """A serving coordinator over two tiny cells, with teardown."""
    cells = [tiny_cell("net-a"), tiny_cell("net-b", n=24)]
    store = ResultStore(tmp_path / "store")
    journal = Journal(tmp_path / "journal.jsonl", sweep={"experiments": ["X"], "workers": 0})
    coord = Coordinator(
        cells,
        store=store,
        journal=journal,
        out_dir=tmp_path,
        retries=1,
        lease_ttl_s=0.3,
        events=False,
    )
    address = coord.start()
    yield coord, address, store, tmp_path
    coord.stop()
    journal.close()


# -- wire protocol -------------------------------------------------------------


def test_net_schema_frozen():
    assert NET_SCHEMA == "runs-net/v1"


def test_cell_wire_round_trip_preserves_key():
    cell = tiny_cell("wire", n=20)
    wire = json.loads(json.dumps(cell_to_wire(cell), sort_keys=True, default=str))
    assert cell_key(cell_from_wire(wire)) == cell_key(cell)


def test_cell_wire_round_trip_with_tuple_kwargs():
    # Tuples become lists on the wire; canonical-JSON keys must not care.
    cell = tiny_cell("tuple", generator_kwargs={"n": 16, "m": 4, "slack": 0.5})
    import dataclasses

    spec = dataclasses.replace(cell.spec, protocol_kwargs={"probes": (1, 2, 3)})
    cell = dataclasses.replace(cell, spec=spec, seed_key="crn")
    wire = json.loads(json.dumps(cell_to_wire(cell), sort_keys=True, default=str))
    rebuilt = cell_from_wire(wire)
    assert cell_key(rebuilt) == cell_key(cell)
    assert rebuilt.seed_key == "crn"
    assert rebuilt.experiment_id == cell.experiment_id


def test_send_recv_frame_round_trip():
    buf = io.BytesIO()
    send_frame(buf, {"type": "lease", "n": 3})
    buf.seek(0)
    assert recv_frame(buf) == {"type": "lease", "n": 3}
    assert recv_frame(buf) is None  # EOF


@pytest.mark.parametrize(
    "raw",
    [
        b"{\"type\": \"lease\"",  # torn: no trailing newline
        b"not json at all\n",
        b"[1, 2, 3]\n",  # JSON but not an object
        b"\"just a string\"\n",
    ],
)
def test_recv_frame_rejects_bad_frames(raw):
    with pytest.raises(FrameError):
        recv_frame(io.BytesIO(raw))


def test_recv_frame_rejects_oversized_frame():
    raw = b'{"pad": "' + b"x" * MAX_FRAME_BYTES + b'"}\n'
    with pytest.raises(FrameError):
        recv_frame(io.BytesIO(raw))


def test_parse_address():
    assert parse_address("example.org:7341") == ("example.org", 7341)
    assert parse_address("7341") == ("127.0.0.1", 7341)
    assert parse_address(("0.0.0.0", 80)) == ("0.0.0.0", 80)


# -- coordinator/worker happy path ---------------------------------------------


def run_worker_thread(address, **kwargs):
    box = {}

    def target():
        try:
            box["report"] = run_worker(address, poll=0.05, **kwargs)
        except Exception as exc:  # surfaced by the caller's assert
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def serve_in_thread(tmp_path, out_name="net", **kwargs):
    listening = threading.Event()
    box = {}

    def on_listen(addr):
        box["address"] = addr
        listening.set()

    def target():
        try:
            box["summary"] = serve_sweep(
                ["F1"],
                out=tmp_path / out_name,
                overrides=F1_OVERRIDES,
                on_listen=on_listen,
                poll=0.05,
                **kwargs,
            )
        except Exception as exc:
            box["error"] = exc
            listening.set()

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert listening.wait(30), "coordinator never started listening"
    return thread, box


def test_distributed_sweep_matches_single_machine(tmp_path):
    reference = run_sweep(["F1"], out=tmp_path / "ref", workers=0, overrides=F1_OVERRIDES)
    assert reference["failed"] == 0

    # events=False: in-process thread workers share the global obs hub,
    # so per-cell sinks are nondeterministic here — event shipping is
    # asserted in test_worker_subprocesses_over_tcp, the real shape.
    server, sbox = serve_in_thread(tmp_path, lease_ttl_s=10.0, events=False)
    workers = [run_worker_thread(sbox["address"]) for _ in range(2)]
    for thread, box in workers:
        thread.join(120)
        assert "error" not in box, box.get("error")
    server.join(120)
    assert "error" not in sbox, sbox.get("error")

    summary = sbox["summary"]
    assert summary["failed"] == 0 and summary["run"] == 3
    assert summary["workers"] == 2
    assert_stores_identical(
        ResultStore(tmp_path / "ref" / "store"), ResultStore(tmp_path / "net" / "store")
    )
    # Per-worker rows reach the watch dashboard.
    snapshot = sweep_snapshot(tmp_path / "net")
    assert {w["id"] for w in snapshot["workers"]} == {"w1", "w2"}
    frame = render_watch(snapshot)
    assert "workers (heartbeat age" in frame
    # The journal shows every cell executed exactly once.
    records = read_journal(tmp_path / "net" / "journal.jsonl")["records"]
    finished = [r for r in records if r["type"] == "finished" and not r.get("cached")]
    assert sorted(r["key"] for r in finished) == sorted(
        ResultStore(tmp_path / "net" / "store").keys()
    )


def test_distributed_rerun_is_all_cache_hits(tmp_path):
    server, sbox = serve_in_thread(tmp_path, lease_ttl_s=10.0)
    thread, box = run_worker_thread(sbox["address"])
    thread.join(120)
    server.join(120)
    assert sbox["summary"]["run"] == 3 and box["report"]["executed"] == 3

    # Same sweep dir again: every cell is a cache hit, so the sweep
    # completes without any worker ever connecting.
    server2, sbox2 = serve_in_thread(tmp_path, lease_ttl_s=10.0)
    server2.join(120)
    assert "error" not in sbox2, sbox2.get("error")
    assert sbox2["summary"]["cached"] == 3
    assert sbox2["summary"]["run"] == 0 and sbox2["summary"]["failed"] == 0


def test_worker_subprocesses_over_tcp(tmp_path):
    """The real thing: 2 `python -m repro runs worker` OS processes."""
    reference = run_sweep(["F1"], out=tmp_path / "ref", workers=0, overrides=F1_OVERRIDES)
    assert reference["failed"] == 0
    server, sbox = serve_in_thread(tmp_path, lease_ttl_s=10.0)
    host, port = sbox["address"]
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "runs", "worker", "--connect", f"{host}:{port}"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(2)
    ]
    for proc in procs:
        out, err = proc.communicate(timeout=240)
        assert proc.returncode == 0, err
        assert "executed" in out
    server.join(120)
    assert sbox["summary"]["failed"] == 0
    assert_stores_identical(
        ResultStore(tmp_path / "ref" / "store"), ResultStore(tmp_path / "net" / "store")
    )
    # Every cell's shipped events land in one merged timeline.
    assert sbox["summary"]["timeline"]["cells"] == 3


# -- protocol robustness -------------------------------------------------------


def test_garbage_frames_do_not_kill_the_coordinator(coordinator):
    coord, address, store, tmp = coordinator
    rogue = RawClient(address)
    rogue.send_raw(b"not json at all\n")
    assert recv_frame(rogue.rfile)["type"] == "error"
    rogue.send_raw(b"[1,2,3]\n")
    assert recv_frame(rogue.rfile)["type"] == "error"
    # The connection survives garbage: an honest register still works.
    assert rogue.register()["type"] == "welcome"
    # Messages before register (other than register) are rejected politely.
    fresh = RawClient(address)
    assert fresh.request({"type": "lease"})["type"] == "error"
    assert fresh.request({"type": "no-such-type"})["type"] == "error"
    rogue.close()
    fresh.close()
    assert coord.state.bad_frames == 2


def test_half_closed_socket_releases_leases(coordinator):
    coord, address, store, tmp = coordinator
    rogue = RawClient(address)
    rogue.register()
    grant = rogue.request({"type": "lease"})
    assert grant["type"] == "lease"
    key = grant["key"]
    rogue.close()  # vanish mid-lease, no heartbeat ever sent
    deadline = time.time() + 10
    while time.time() < deadline and key not in coord.state.pending:
        time.sleep(0.02)
    assert key in coord.state.pending  # re-queued at EOF, before any ttl
    assert coord.state.attempts[key] == 1


def test_lease_expiry_requeues_and_sweep_completes(coordinator):
    coord, address, store, tmp = coordinator
    rogue = RawClient(address)
    rogue.register()
    grant = rogue.request({"type": "lease"})
    assert grant["type"] == "lease"
    # Hold the lease without heartbeating; ttl is 0.3s.
    deadline = time.time() + 10
    while time.time() < deadline and not coord.state.reap():
        time.sleep(0.05)
    # Late heartbeat after expiry is told so.
    assert rogue.request({"type": "heartbeat", "key": grant["key"]})["type"] == "expired"
    assert coord.state.lease_expiries == 1
    # An honest worker completes the whole sweep, expired cell included.
    thread, box = run_worker_thread(address)
    summary_box = {}

    def wait_done():
        summary_box["summary"] = coord.wait(poll=0.05, deadline_s=120)

    waiter = threading.Thread(target=wait_done, daemon=True)
    waiter.start()
    thread.join(120)
    waiter.join(120)
    assert "error" not in box
    assert summary_box["summary"]["run"] == 2 and summary_box["summary"]["failed"] == 0
    records = read_journal(tmp / "journal.jsonl")["records"]
    assert sum(1 for r in records if r["type"] == "lease_expired") == 1
    # Exactly one journalled finish per cell despite the expiry.
    finished = [r["key"] for r in records if r["type"] == "finished"]
    assert len(finished) == len(set(finished)) == 2
    rogue.close()


def test_duplicate_result_delivery_is_idempotent(coordinator):
    coord, address, store, tmp = coordinator
    client = RawClient(address)
    client.register()
    grant = client.request({"type": "lease"})
    key = grant["key"]
    payload = execute_cell(cell_from_wire(grant["cell"]))
    assert payload["key"] == key
    first = client.request({"type": "result", "key": key, "payload": payload})
    assert first == {"type": "ack", "committed": True, "duplicate": False}
    before = store.get(key)
    second = client.request({"type": "result", "key": key, "payload": payload})
    assert second == {"type": "ack", "committed": False, "duplicate": True}
    assert store.get(key) == before  # no second store write
    records = read_journal(tmp / "journal.jsonl")["records"]
    assert sum(1 for r in records if r["type"] == "finished" and r["key"] == key) == 1
    client.close()


def test_result_for_wrong_key_is_rejected(coordinator):
    coord, address, store, tmp = coordinator
    client = RawClient(address)
    client.register()
    grant = client.request({"type": "lease"})
    payload = execute_cell(cell_from_wire(grant["cell"]))
    reply = client.request(
        {"type": "result", "key": "0" * 32, "payload": payload}
    )
    assert reply["type"] == "error"
    mismatched = dict(payload, key="0" * 32)
    reply = client.request({"type": "result", "key": grant["key"], "payload": mismatched})
    assert reply["type"] == "error"
    assert not store.has(grant["key"])
    client.close()


def test_register_rejects_schema_and_version_mismatch(coordinator):
    coord, address, store, tmp = coordinator
    client = RawClient(address)
    reply = client.request({"type": "register", "schema": "runs-net/v0"})
    assert reply["type"] == "error"
    client2 = RawClient(address)
    reply = client2.request(
        {"type": "register", "schema": NET_SCHEMA, "package_version": "not-this-one"}
    )
    assert reply["type"] == "error" and "version" in reply["error"]
    client.close()
    client2.close()


def test_failed_cells_requeue_then_fail_and_sweep_completes(tmp_path):
    from test_runs import failing_cell

    store = ResultStore(tmp_path / "store")
    journal = Journal(tmp_path / "journal.jsonl")
    coord = Coordinator(
        [failing_cell()],
        store=store,
        journal=journal,
        out_dir=tmp_path,
        retries=1,
        lease_ttl_s=5.0,
        events=False,
    )
    address = coord.start()
    try:
        thread, box = run_worker_thread(address)
        summary = coord.wait(poll=0.05, deadline_s=60)
        thread.join(60)
        assert "error" not in box
        assert box["report"]["failed"] == 2  # initial attempt + 1 retry
        assert summary["failed"] == 1 and summary["run"] == 0
        assert summary["failures"][0]["attempts"] == 2
        records = read_journal(tmp_path / "journal.jsonl")["records"]
        assert sum(1 for r in records if r["type"] == "failed") == 1
    finally:
        coord.stop()
        journal.close()


def test_coordinator_restart_resumes(tmp_path):
    """Kill the coordinator mid-sweep; re-serving finishes the rest."""
    server, sbox = serve_in_thread(tmp_path, lease_ttl_s=10.0)
    thread, box = run_worker_thread(sbox["address"], max_cells=1)
    thread.join(120)
    assert box["report"]["executed"] == 1
    # Simulate the crash: abandon the serve thread by completing later —
    # the Coordinator object dies with its daemon thread; the sweep dir
    # (journal + 1 committed cell) is what a restart has to work with.
    # A second serve over the same dir must run exactly the 2 others.
    server2, sbox2 = serve_in_thread(tmp_path, lease_ttl_s=10.0)
    thread2, box2 = run_worker_thread(sbox2["address"])
    thread2.join(120)
    server2.join(120)
    assert "error" not in sbox2
    assert sbox2["summary"]["cached"] == 1 and sbox2["summary"]["run"] == 2
    assert box2["report"]["executed"] == 2
    # ... and a *local* resume also sees nothing left to do.
    from repro.runs import resume_sweep

    summary = resume_sweep(tmp_path / "net")
    assert summary["cached"] == 3 and summary["run"] == 0
    reference = run_sweep(["F1"], out=tmp_path / "ref", workers=0, overrides=F1_OVERRIDES)
    assert reference["failed"] == 0
    assert_stores_identical(
        ResultStore(tmp_path / "ref" / "store"), ResultStore(tmp_path / "net" / "store")
    )
    # The first, abandoned coordinator still holds the socket; let it go.
    del server, sbox


def test_workers_json_shape(tmp_path):
    server, sbox = serve_in_thread(tmp_path, lease_ttl_s=10.0)
    thread, box = run_worker_thread(sbox["address"])
    thread.join(120)
    server.join(120)
    table = read_workers(tmp_path / "net")
    assert table["schema"] == "runs-workers/v1"
    assert table["lease_ttl_s"] == 10.0
    (worker,) = table["workers"]
    assert worker["cells_done"] == 3 and worker["host"]
    assert read_workers(tmp_path) is None  # no table here


def test_workers_roster_and_cli(tmp_path, capsys):
    from repro.cli import main
    from repro.runs import render_workers, workers_roster

    server, sbox = serve_in_thread(tmp_path, lease_ttl_s=10.0)
    thread, box = run_worker_thread(sbox["address"])
    thread.join(120)
    server.join(120)

    roster = workers_roster(tmp_path / "net")
    assert roster is not None
    (row,) = roster
    assert row["cells_done"] == 3
    assert row["alive"] in (True, False)  # joined view carries liveness
    assert "lease_expired" in row

    text = render_workers(roster)
    assert "workers —" in text and row["id"][:8] in text

    assert main(["runs", "workers", str(tmp_path / "net")]) == 0
    out = capsys.readouterr().out
    assert "workers —" in out

    assert main(["runs", "workers", str(tmp_path / "net"), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["cells_done"] == 3

    # No workers.json (plain local sweep) -> explicit error, not a crash.
    assert main(["runs", "workers", str(tmp_path)]) == 1
