"""SelfishRebalanceProtocol and centralized baselines."""

import numpy as np
import pytest

from repro.baselines.centralized import (
    optimal_assignment,
    round_robin_assignment,
    water_filling,
)
from repro.baselines.selfish import SelfishRebalanceProtocol
from repro.core.instance import AccessMap, Instance
from repro.core.latency import LatencyProfile
from repro.core.state import State
from repro.games.congestion import is_latency_nash
from repro.sim.engine import run
from repro.workloads.generators import overloaded, uniform_slack


class TestSelfishRebalance:
    def test_balances_identical_machines(self):
        # Drive the protocol directly (the engine would stop immediately:
        # with huge thresholds every state is satisfying) until it reaches
        # a latency Nash — near-balanced loads on identical machines.
        inst = Instance.identical_machines([999.0] * 64, 8)
        rng = np.random.default_rng(3)
        state = State.worst_case_pile(inst)
        proto = SelfishRebalanceProtocol()
        proto.reset(inst, rng)
        for _ in range(5000):
            proto.step(state, np.ones(64, dtype=bool), rng)
            if proto.is_quiescent(state):
                break
        assert is_latency_nash(state)
        assert state.loads.max() - state.loads.min() <= 1

    def test_quiescent_exactly_at_latency_nash(self):
        inst = Instance.identical_machines([999.0] * 8, 4)
        proto = SelfishRebalanceProtocol()
        balanced = State(inst, np.asarray([0, 0, 1, 1, 2, 2, 3, 3]))
        assert proto.is_quiescent(balanced)
        pile = State.worst_case_pile(inst)
        assert not proto.is_quiescent(pile)

    def test_quiescence_with_access_map(self):
        inst = Instance(
            thresholds=np.asarray([9.0, 9.0]),
            latencies=LatencyProfile.identical(2),
            access=AccessMap([[0], [0, 1]], 2),
        )
        proto = SelfishRebalanceProtocol()
        state = State(inst, np.asarray([0, 1]))
        assert proto.is_quiescent(state)
        both = State(inst, np.asarray([0, 0]))
        assert not proto.is_quiescent(both)

    def test_oblivious_collapse_under_overload(self):
        inst = overloaded(48, 4, 4.0)  # 48 users, capacity 16
        result = run(
            inst,
            SelfishRebalanceProtocol(),
            seed=2,
            initial="pile",
            max_rounds=5000,
        )
        # balanced loads ~12 > q = 4: nobody satisfied
        assert result.n_satisfied <= 4

    def test_min_gap_validation(self):
        with pytest.raises(ValueError):
            SelfishRebalanceProtocol(min_gap=-0.1)


class TestCentralizedBaselines:
    def test_optimal_assignment_on_feasible(self):
        inst = uniform_slack(100, 8, 0.2)
        state = optimal_assignment(inst)
        assert state.is_satisfying()

    def test_optimal_assignment_raises_on_infeasible(self):
        inst = overloaded(100, 4, 10.0)
        with pytest.raises(ValueError):
            optimal_assignment(inst)

    def test_optimal_assignment_uses_dp_when_greedy_fails(self):
        inst = Instance.related_machines([3.0, 3.0, 1.0], [2.0, 0.5])
        state = optimal_assignment(inst)
        assert state.is_satisfying()

    def test_water_filling_solves_easy_instances(self):
        inst = uniform_slack(128, 8, 0.3)
        state = water_filling(inst)
        assert state.is_satisfying()
        state.check_invariants()

    def test_water_filling_respects_access(self):
        inst = Instance(
            thresholds=np.asarray([2.0, 2.0, 2.0]),
            latencies=LatencyProfile.identical(3),
            access=AccessMap([[0], [1], [2]], 3),
        )
        state = water_filling(inst)
        assert list(state.assignment) == [0, 1, 2]

    def test_round_robin_balances(self):
        inst = uniform_slack(64, 8, 0.2)
        state = round_robin_assignment(inst)
        assert state.loads.max() - state.loads.min() <= 1

    def test_round_robin_with_access(self):
        inst = Instance(
            thresholds=np.asarray([5.0] * 4),
            latencies=LatencyProfile.identical(2),
            access=AccessMap([[0], [0], [0, 1], [0, 1]], 2),
        )
        state = round_robin_assignment(inst)
        state.check_invariants()
        assert state.loads.sum() == 4
