"""Analysis toolkit: statistics, fits, convergence utilities, drift, tables."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    churn_after,
    sustained_convergence_round,
    time_to_fraction,
    unsatisfied_area,
)
from repro.analysis.drift import estimate_drift
from repro.analysis.scaling import classify_growth, fit_linear, fit_logarithmic, fit_power
from repro.analysis.stats import Summary, bootstrap_ci, geometric_mean, summarize
from repro.analysis.tables import format_cell, render_table
from repro.core.potential import overload_potential
from repro.core.protocols import QoSSamplingProtocol
from repro.sim.metrics import Trajectory
from repro.workloads.generators import uniform_slack


class TestStats:
    def test_summary_of_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.median == 3.0
        assert s.mean == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.ci_low <= s.median <= s.ci_high
        assert isinstance(s, Summary)

    def test_summary_drops_nan(self):
        s = summarize([1.0, np.nan, 3.0])
        assert s.n == 2

    def test_summary_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([np.nan])

    def test_bootstrap_ci_contains_truth_mostly(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 1.0, size=200)
        lo, hi = bootstrap_ci(data, np.mean, seed=1)
        assert lo < 10.2 and hi > 9.8
        assert lo <= hi

    def test_bootstrap_single_value(self):
        assert bootstrap_ci([5.0]) == (5.0, 5.0)

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], np.mean)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestScalingFits:
    def test_recovers_logarithmic_law(self):
        ns = np.asarray([100, 200, 400, 800, 1600, 3200])
        ts = 2.5 * np.log(ns) + 1.0
        fit = fit_logarithmic(ns, ts)
        assert fit.params[0] == pytest.approx(2.5)
        assert fit.r_squared == pytest.approx(1.0)
        assert classify_growth(ns, ts)["verdict"] == "logarithmic"

    def test_recovers_power_law(self):
        ns = np.asarray([100, 200, 400, 800, 1600])
        ts = 0.5 * ns**0.8
        fit = fit_power(ns, ts)
        assert fit.params[1] == pytest.approx(0.8)
        assert classify_growth(ns, ts)["verdict"] in ("polynomial", "power")

    def test_recovers_linear_law(self):
        ns = np.asarray([10, 20, 40, 80, 160, 320])
        ts = 3.0 * ns + 7.0
        fit = fit_linear(ns, ts)
        assert fit.params[0] == pytest.approx(3.0)
        verdict = classify_growth(ns, ts)["verdict"]
        assert verdict in ("linear", "polynomial")  # n^1 power also fits

    def test_tiny_power_exponent_reads_as_log(self):
        ns = np.asarray([128, 256, 512, 1024, 2048])
        ts = 4.0 * ns**0.05
        assert classify_growth(ns, ts)["verdict"] == "logarithmic"

    def test_predict(self):
        fit = fit_logarithmic([10, 100, 1000], [1.0, 2.0, 3.0])
        assert fit.predict(100.0) == pytest.approx(2.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_logarithmic([1, 2], [1, 2])
        with pytest.raises(ValueError):
            fit_power([1, 2, 3], [0.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            fit_linear([-1, 2, 3], [1, 2, 3])


class TestConvergenceUtils:
    def make(self, unsat):
        n = len(unsat)
        return Trajectory(
            n_unsatisfied=np.asarray(unsat, dtype=np.int64),
            n_moved=np.asarray([1] * n, dtype=np.int64),
            n_attempted=np.asarray([1] * n, dtype=np.int64),
        )

    def test_sustained_convergence(self):
        # touches zero at round 2 but bounces; settles from round 4
        traj = self.make([5, 3, 0, 2, 0, 0, 0])
        assert sustained_convergence_round(traj, sustain=1) == 2
        assert sustained_convergence_round(traj, sustain=3) == 4
        assert sustained_convergence_round(self.make([3, 2, 1])) is None

    def test_sustained_short_tail_counts(self):
        traj = self.make([3, 0])
        assert sustained_convergence_round(traj, sustain=5) == 1

    def test_time_to_fraction(self):
        traj = self.make([10, 5, 2, 0])
        assert time_to_fraction(traj, 0.5, n_users=10) == 1
        assert time_to_fraction(traj, 1.0, n_users=10) == 3
        assert time_to_fraction(self.make([10, 9]), 0.5, n_users=10) is None
        with pytest.raises(ValueError):
            time_to_fraction(traj, 1.5, n_users=10)

    def test_unsatisfied_area_and_churn(self):
        traj = self.make([4, 2, 0])
        assert unsatisfied_area(traj) == 6.0
        assert churn_after(traj, 1) == 2
        assert churn_after(traj, 99) == 0
        with pytest.raises(ValueError):
            churn_after(traj, -1)


class TestDrift:
    def test_negative_drift_on_converging_dynamics(self):
        inst = uniform_slack(256, 16, slack=0.2)
        est = estimate_drift(
            inst,
            QoSSamplingProtocol(),
            overload_potential,
            potential_name="overload",
            n_runs=4,
            max_rounds=500,
            initial="pile",
            seed=1,
        )
        assert est.is_negative
        assert est.n_transitions > 0
        assert 0.0 <= est.negative_fraction <= 1.0
        assert est.by_level  # bucketed table populated


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(3.0) == "3"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(float("nan")) == "nan"
        assert format_cell("abc") == "abc"

    def test_render_table(self):
        text = render_table(
            ["a", "bb"], [[1, 2.5], [10, None]], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "2.5" in text and "-" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])
