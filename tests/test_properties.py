"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.feasibility import (
    brute_force_assignment,
    greedy_assignment,
    max_satisfied,
    max_satisfied_brute_force,
    segment_dp_assignment,
)
from repro.core.instance import AccessMap, Instance
from repro.core.latency import (
    AffineLatency,
    CapacityLatency,
    IdentityLatency,
    LatencyProfile,
    MM1Latency,
    PolynomialLatency,
    SpeedScaledLatency,
    TableLatency,
)
from repro.core.potential import overload_potential
from repro.core.protocols import PermitProtocol, QoSSamplingProtocol
from repro.core.state import State

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

latency_functions = st.one_of(
    st.just(IdentityLatency()),
    st.floats(0.25, 8.0).map(SpeedScaledLatency),
    st.tuples(st.floats(0.1, 4.0), st.floats(0.0, 3.0)).map(
        lambda t: AffineLatency(*t)
    ),
    st.tuples(st.floats(0.2, 2.0), st.integers(1, 3)).map(
        lambda t: PolynomialLatency(coeff=t[0], degree=t[1])
    ),
    st.floats(1.5, 20.0).map(MM1Latency),
    st.integers(0, 10).map(CapacityLatency),
    st.lists(st.floats(0.0, 10.0), min_size=1, max_size=8).map(
        lambda xs: TableLatency(sorted(xs))
    ),
)

tiny_instances = st.builds(
    lambda qs, m: Instance.identical_machines(np.asarray(qs, dtype=np.float64), m),
    st.lists(st.integers(1, 7).map(float), min_size=1, max_size=6),
    st.integers(1, 3),
)


@COMMON
@given(f=latency_functions, q=st.floats(0.0, 25.0))
def test_capacity_is_the_exact_inverse(f, q):
    cap = f.capacity(q)
    if cap < 0:
        assert f(0) > q
    else:
        cap = min(cap, 1000)
        assert f(cap) <= q + 1e-7
        if cap < 1000:
            assert f(cap + 1) > q


@COMMON
@given(f=latency_functions, xs=st.lists(st.integers(0, 40), min_size=1, max_size=20))
def test_latency_monotone_and_vectorization_consistent(f, xs):
    xs_sorted = np.asarray(sorted(xs), dtype=np.float64)
    vals = f(xs_sorted)
    with np.errstate(invalid="ignore"):
        diffs = np.diff(vals)
    assert np.all((diffs >= -1e-9) | np.isnan(diffs))
    for x, v in zip(xs_sorted, vals):
        scalar = f(float(x))
        assert (np.isinf(scalar) and np.isinf(v)) or scalar == v


@COMMON
@given(inst=tiny_instances, data=st.data())
def test_loads_always_match_assignment_under_random_migrations(inst, data):
    rng = np.random.default_rng(0)
    state = State.uniform_random(inst, rng)
    n, m = inst.n_users, inst.n_resources
    for _ in range(5):
        k = data.draw(st.integers(0, n))
        users = data.draw(
            st.lists(
                st.integers(0, n - 1), min_size=k, max_size=k, unique=True
            )
        )
        targets = data.draw(
            st.lists(st.integers(0, m - 1), min_size=k, max_size=k)
        )
        state.apply_migrations(
            np.asarray(users, dtype=np.int64), np.asarray(targets, dtype=np.int64)
        )
        state.check_invariants()
        assert state.loads.sum() == inst.n_users


@COMMON
@given(inst=tiny_instances)
def test_greedy_matches_brute_force(inst):
    greedy = greedy_assignment(inst)
    brute = brute_force_assignment(inst)
    assert greedy.exact
    assert greedy.feasible == brute.feasible


@COMMON
@given(
    qs=st.lists(st.integers(1, 7).map(float), min_size=1, max_size=5),
    fns=st.lists(latency_functions, min_size=1, max_size=3),
)
def test_segment_dp_matches_brute_force_on_arbitrary_profiles(qs, fns):
    inst = Instance(
        thresholds=np.asarray(qs, dtype=np.float64),
        latencies=LatencyProfile(fns),
    )
    dp = segment_dp_assignment(inst)
    brute = brute_force_assignment(inst)
    assert dp.feasible == brute.feasible
    if dp.feasible:
        assert dp.state is not None and dp.state.is_satisfying()


@COMMON
@given(inst=tiny_instances)
def test_max_satisfied_matches_brute_force(inst):
    exact = max_satisfied(inst)
    brute = max_satisfied_brute_force(inst)
    assert exact.exact
    assert exact.n_satisfied == brute.n_satisfied


@COMMON
@given(inst=tiny_instances, seed=st.integers(0, 2**16))
def test_overload_potential_zero_iff_satisfying(inst, seed):
    state = State.uniform_random(inst, np.random.default_rng(seed))
    assert (overload_potential(state) == 0) == state.is_satisfying()


@COMMON
@given(inst=tiny_instances, seed=st.integers(0, 2**16))
def test_permit_monotone_satisfaction(inst, seed):
    rng = np.random.default_rng(seed)
    state = State.uniform_random(inst, rng)
    proto = PermitProtocol()
    proto.reset(inst, rng)
    prev = state.satisfied_mask().copy()
    for _ in range(12):
        proto.step(state, np.ones(inst.n_users, dtype=bool), rng)
        sat = state.satisfied_mask()
        assert not np.any(prev & ~sat)
        prev = sat.copy()


@COMMON
@given(inst=tiny_instances, seed=st.integers(0, 2**16))
def test_sampling_proposals_are_always_valid(inst, seed):
    rng = np.random.default_rng(seed)
    state = State.uniform_random(inst, rng)
    proto = QoSSamplingProtocol()
    proto.reset(inst, rng)
    sat_before = state.satisfied_mask()
    proposal = proto.propose(state, np.ones(inst.n_users, dtype=bool), rng)
    if proposal.size:
        assert not sat_before[proposal.users].any()
        assert state.would_satisfy(proposal.users, proposal.targets).all()


@COMMON
@given(
    n=st.integers(1, 6),
    m=st.integers(1, 4),
    seed=st.integers(0, 2**16),
    data=st.data(),
)
def test_access_map_sampling_stays_allowed(n, m, seed, data):
    allowed = [
        sorted(
            data.draw(
                st.lists(
                    st.integers(0, m - 1), min_size=1, max_size=m, unique=True
                )
            )
        )
        for _ in range(n)
    ]
    access = AccessMap(allowed, m)
    rng = np.random.default_rng(seed)
    users = np.asarray(list(range(n)) * 10, dtype=np.int64)
    samples = access.sample(users, rng)
    for u, r in zip(users, samples):
        assert int(r) in allowed[int(u)]


@COMMON
@given(inst=tiny_instances, seed=st.integers(0, 2**16))
def test_engine_runs_are_reproducible(inst, seed):
    from repro.sim.engine import run

    a = run(inst, QoSSamplingProtocol(), seed=seed, initial="pile", max_rounds=200)
    b = run(inst, QoSSamplingProtocol(), seed=seed, initial="pile", max_rounds=200)
    assert a.status == b.status
    assert a.rounds == b.rounds
    assert a.total_moves == b.total_moves


@COMMON
@given(inst=tiny_instances, seed=st.integers(0, 2**16))
def test_ffd_witnesses_are_sound(inst, seed):
    """first_fit_decreasing either fails or returns a genuinely
    satisfying state (cross-checked by the naive certifier)."""
    from repro.core.certify import certify_satisfying
    from repro.core.weighted import first_fit_decreasing

    state = first_fit_decreasing(inst)
    if state is not None:
        ok, issues = certify_satisfying(state)
        assert ok, issues
        # unit weights: a witness implies the exact theory agrees
        assert brute_force_assignment(inst).feasible


@COMMON
@given(
    m=st.integers(1, 12),
    theta=st.floats(0.01, 0.9),
    p=st.floats(0.05, 1.0),
    steps=st.integers(1, 30),
)
def test_fluid_map_conserves_mass_and_positivity(m, theta, p, steps):
    from repro.fluid.model import FluidSystem

    system = FluidSystem(
        m=m,
        thetas=np.asarray([theta]),
        masses=np.asarray([1.0]),
        p=p,
    )
    x = system.pile_state()
    for _ in range(steps):
        x = system.step(x)
        assert abs(x.sum() - 1.0) < 1e-9
        assert np.all(x >= -1e-12)


@COMMON
@given(
    values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50
    )
)
def test_sparkline_length_matches_input(values):
    from repro.viz import sparkline

    assert len(sparkline(values)) == len(values)


@COMMON
@given(inst=tiny_instances, seed=st.integers(0, 2**16))
def test_certifiers_agree_with_fast_paths(inst, seed):
    from repro.core.certify import certify_satisfying, certify_stable
    from repro.core.stability import is_stable

    state = State.uniform_random(inst, np.random.default_rng(seed))
    ok_sat, _ = certify_satisfying(state)
    assert ok_sat == state.is_satisfying()
    ok_stable, _ = certify_stable(state)
    assert ok_stable == is_stable(state)
