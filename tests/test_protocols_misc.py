"""Naive/blind protocols, neighborhood sampling, and rate rules."""

import networkx as nx
import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.protocols.naive import BlindRandomProtocol, NaiveGreedyProtocol
from repro.core.protocols.neighborhood import (
    NeighborhoodSamplingProtocol,
    ResourceGraph,
)
from repro.core.protocols.rates import (
    AdaptiveBackoffRate,
    ConstantRate,
    SlackProportionalRate,
)
from repro.core.state import State
from repro.workloads.topology import ring_graph


class TestNaiveGreedy:
    def test_commits_every_eligible_probe(self, small_uniform, rng):
        state = State.worst_case_pile(small_uniform)
        proto = NaiveGreedyProtocol()
        proto.reset(small_uniform, rng)
        proposal = proto.propose(state, np.ones(12, dtype=bool), rng)
        # every mover that sampled a satisfying non-self target commits;
        # with 3 empty resources of capacity 4 and 12 users, expect many.
        assert proposal.size >= 6


class TestBlindRandom:
    def test_moves_without_checking(self, small_uniform, rng):
        state = State.worst_case_pile(small_uniform)
        proto = BlindRandomProtocol()
        proto.reset(small_uniform, rng)
        proposal = proto.propose(state, np.ones(12, dtype=bool), rng)
        assert proposal.size == 12  # everyone unsatisfied jumps

    def test_satisfied_users_stay(self, small_uniform, rng):
        state = State(small_uniform, np.asarray([0, 1, 2, 3] * 3))
        proto = BlindRandomProtocol()
        assert proto.propose(state, np.ones(12, dtype=bool), rng).size == 0

    def test_jump_probability(self, small_uniform):
        rng = np.random.default_rng(5)
        state = State.worst_case_pile(small_uniform)
        proto = BlindRandomProtocol(jump_p=0.25)
        total = sum(
            proto.propose(state, np.ones(12, dtype=bool), rng).size
            for _ in range(200)
        )
        assert 300 < total < 900  # expectation 600

    def test_never_quiescent(self, trap_state):
        assert BlindRandomProtocol().is_quiescent(trap_state) is None

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            BlindRandomProtocol(jump_p=0.0)


class TestResourceGraph:
    def test_requires_exact_node_set(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError):
            ResourceGraph(g, 4)

    def test_requires_connected(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            ResourceGraph(g, 4)

    def test_sample_neighbor_stays_adjacent(self, rng):
        graph = ring_graph(8)
        starts = rng.integers(0, 8, size=500)
        samples = graph.sample_neighbor(starts, rng)
        for s, t in zip(starts, samples):
            assert t in graph.neighbors_of(int(s))

    def test_neighbors_of(self):
        graph = ring_graph(5)
        assert sorted(graph.neighbors_of(0)) == [1, 4]


class TestNeighborhoodProtocol:
    def test_targets_are_one_hop(self, rng):
        inst = Instance.identical_machines([3.0] * 12, 6)
        graph = ring_graph(6)
        proto = NeighborhoodSamplingProtocol(graph, rate=ConstantRate(1.0))
        proto.reset(inst, rng)
        state = State.worst_case_pile(inst)
        for _ in range(30):
            proposal = proto.propose(state, np.ones(12, dtype=bool), rng)
            for u, t in zip(proposal.users, proposal.targets):
                own = int(state.assignment[u])
                assert t in graph.neighbors_of(own)
            proto.step(state, np.ones(12, dtype=bool), rng)
            if state.is_satisfying():
                break

    def test_size_mismatch_rejected(self, rng):
        inst = Instance.identical_machines([3.0] * 6, 4)
        proto = NeighborhoodSamplingProtocol(ring_graph(6))
        with pytest.raises(ValueError):
            proto.reset(inst, rng)

    def test_local_quiescence(self, rng):
        # A user stuck behind full neighbours while distant capacity exists.
        inst = Instance.identical_machines([1.0, 2.0, 2.0, 9.0, 9.0], 3)
        graph = ring_graph(3)
        proto = NeighborhoodSamplingProtocol(graph)
        proto.reset(inst, rng)
        # r0 = {q1, q9, q9} (load 3: q1 unsat), r1 = {q2, q2} (load 2),
        # r2 empty.  q1's neighbours on the ring are r1 (2+1=3 > 1) and r2
        # (0+1 = 1 <= 1): improvable -> not quiescent.
        state = State(inst, np.asarray([0, 1, 1, 0, 0]))
        assert proto.is_quiescent(state) is False
        # Fill r2 so the neighbourhood offers nothing.
        inst2 = Instance.identical_machines([1.0, 2.0, 2.0, 9.0, 9.0, 9.0, 9.0], 3)
        state2 = State(inst2, np.asarray([0, 1, 1, 0, 0, 2, 2]))
        proto2 = NeighborhoodSamplingProtocol(graph)
        proto2.reset(inst2, rng)
        assert proto2.is_quiescent(state2) is True


class TestRates:
    def test_constant_rate_statistics(self, small_uniform):
        rng = np.random.default_rng(0)
        rate = ConstantRate(0.5)
        state = State.worst_case_pile(small_uniform)
        users = np.arange(12)
        targets = np.ones(12, dtype=np.int64)
        total = sum(
            int(rate.commit_mask(state, users, targets, rng).sum())
            for _ in range(500)
        )
        assert 2700 < total < 3300  # expectation 3000

    def test_constant_rate_p1_commits_all(self, small_uniform, rng):
        rate = ConstantRate(1.0)
        state = State.worst_case_pile(small_uniform)
        mask = rate.commit_mask(state, np.arange(12), np.ones(12, dtype=np.int64), rng)
        assert mask.all()

    def test_constant_rate_validation(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)
        with pytest.raises(ValueError):
            ConstantRate(1.5)

    def test_slack_proportional_bounds(self, small_uniform, rng):
        rate = SlackProportionalRate(floor=0.1)
        rate.reset(small_uniform, rng)
        state = State.worst_case_pile(small_uniform)
        users = np.arange(12)
        targets = np.full(12, 1, dtype=np.int64)
        mask = rate.commit_mask(state, users, targets, rng)
        assert mask.dtype == bool and mask.shape == (12,)

    def test_adaptive_backoff_punishes_collisions(self, small_uniform, rng):
        rate = AdaptiveBackoffRate(p0=1.0, backoff=0.5)
        rate.reset(small_uniform, rng)
        state = State.worst_case_pile(small_uniform)
        # Pretend users 0..5 moved and are still unsatisfied (they are: all
        # on r0 with load 12 > 4).
        rate.observe(state, np.arange(6))
        assert np.allclose(rate._p[:6], 0.5)
        assert np.allclose(rate._p[6:], 1.0)
        # Quiet users recover toward 1.
        rate.observe(state, np.arange(0))
        assert np.allclose(rate._p[:6], 1.0)

    def test_adaptive_backoff_floor(self, small_uniform, rng):
        rate = AdaptiveBackoffRate(p0=1.0, backoff=0.01, floor=0.25)
        rate.reset(small_uniform, rng)
        state = State.worst_case_pile(small_uniform)
        rate.observe(state, np.arange(12))
        assert np.all(rate._p >= 0.25)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBackoffRate(backoff=1.5)
        with pytest.raises(ValueError):
            AdaptiveBackoffRate(recover=0.5)
        with pytest.raises(ValueError):
            SlackProportionalRate(floor=0.0)
