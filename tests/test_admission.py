"""Asynchronous admission control (msgsim): no overshoot, monotone, fast."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.latency import IdentityLatency
from repro.msgsim.admission import (
    AdmissionResourceAgent,
    AdmitJoin,
    AdmitLeave,
    AdmitReply,
    AdmitRequest,
)
from repro.msgsim.network import ConstantDelay, Network
from repro.msgsim.runner import run_message_sim
from repro.workloads.generators import overloaded, uniform_slack, weighted_uniform


class _Sink:
    def __init__(self, agent_id):
        self.agent_id = agent_id
        self.received = []

    def handle(self, msg, network):
        self.received.append(msg)


class TestResourceAgent:
    def make(self):
        net = Network(delay_model=ConstantDelay(0.01), seed=0)
        res = AdmissionResourceAgent(0, IdentityLatency())
        sink = _Sink("user:0")
        net.register(res)
        net.register(sink)
        return net, res, sink

    def test_admission_reserves(self):
        net, res, sink = self.make()
        net.send(res.agent_id, AdmitRequest("user:0", threshold=2.0, weight=1.0))
        net.run(max_events=5)
        assert res.reserved == 1.0
        reply = sink.received[-1]
        assert isinstance(reply, AdmitReply) and reply.admitted

    def test_reservations_block_overshoot(self):
        net, res, sink = self.make()
        # threshold 2: room for two users; the third must be denied even
        # though nobody has joined yet (only reservations exist).
        for _ in range(3):
            net.send(res.agent_id, AdmitRequest("user:0", threshold=2.0, weight=1.0))
        net.run(max_events=10)
        verdicts = [m.admitted for m in sink.received if isinstance(m, AdmitReply)]
        assert verdicts == [True, True, False]
        assert res.reserved == 2.0

    def test_join_converts_reservation(self):
        net, res, sink = self.make()
        net.send(res.agent_id, AdmitRequest("user:0", threshold=2.0, weight=1.0))
        net.run(max_events=5)
        net.send(res.agent_id, AdmitJoin("user:0", threshold=2.0, weight=1.0))
        net.run(max_events=5)
        assert res.load == 1.0 and res.reserved == 0.0
        assert res.resident_thresholds[2.0] == 1

    def test_unreserved_join_rejected(self):
        net, res, sink = self.make()
        net.send(res.agent_id, AdmitJoin("user:0", threshold=2.0, weight=1.0))
        with pytest.raises(AssertionError):
            net.run(max_events=5)

    def test_startup_join_allowed(self):
        net, res, sink = self.make()
        net.send(
            res.agent_id,
            AdmitJoin("user:0", threshold=2.0, weight=1.0, reserved=False),
        )
        net.run(max_events=5)
        assert res.load == 1.0

    def test_resident_min_guards_real_arrivals(self):
        net, res, sink = self.make()
        # A tight resident (q = 1) at load 1; an arrival with a huge
        # threshold would push the load to 2 > 1: must be denied.
        net.send(
            res.agent_id,
            AdmitJoin("user:0", threshold=1.0, weight=1.0, reserved=False),
        )
        net.run(max_events=5)
        net.send(res.agent_id, AdmitRequest("user:0", threshold=99.0, weight=1.0))
        net.run(max_events=5)
        assert not sink.received[-1].admitted

    def test_zero_weight_check_ignores_resident_min(self):
        net, res, sink = self.make()
        # residents: q=1 (unsatisfied at load 2) and q=9 (satisfied).
        net.send(res.agent_id, AdmitJoin("u", threshold=1.0, weight=1.0, reserved=False))
        net.send(res.agent_id, AdmitJoin("u", threshold=9.0, weight=1.0, reserved=False))
        net.run(max_events=5)
        # the q=9 user's self-check must say "satisfied" (2 <= 9) even
        # though the resident minimum is 1.
        net.send(res.agent_id, AdmitRequest("user:0", threshold=9.0, weight=0.0))
        net.run(max_events=5)
        assert sink.received[-1].admitted

    def test_leave_updates_threshold_multiset(self):
        net, res, sink = self.make()
        net.send(res.agent_id, AdmitJoin("u", threshold=2.0, weight=1.0, reserved=False))
        net.send(res.agent_id, AdmitJoin("u", threshold=2.0, weight=1.0, reserved=False))
        net.run(max_events=5)
        net.send(res.agent_id, AdmitLeave("u", threshold=2.0, weight=1.0))
        net.run(max_events=5)
        assert res.resident_thresholds[2.0] == 1
        net.send(res.agent_id, AdmitLeave("u", threshold=2.0, weight=1.0))
        net.run(max_events=5)
        assert 2.0 not in res.resident_thresholds


class TestAdmissionRuns:
    def test_converges_on_generous_instance(self):
        inst = uniform_slack(240, 16, slack=0.25)
        result = run_message_sim(
            inst, seed=3, protocol="admission", initial="pile", max_time=500.0
        )
        assert result.status == "satisfying"
        result.final_state.check_invariants()

    def test_faster_and_cheaper_than_sampling(self):
        inst = uniform_slack(300, 20, slack=0.2)
        sampling = run_message_sim(
            inst, seed=4, protocol="sampling", initial="pile", max_time=500.0
        )
        admission = run_message_sim(
            inst, seed=4, protocol="admission", initial="pile", max_time=500.0
        )
        assert admission.status == sampling.status == "satisfying"
        assert admission.time <= sampling.time
        assert admission.total_messages <= sampling.total_messages

    def test_no_overshoot_reaches_opt_on_overload(self):
        # From the pile, admission fills resources to exactly q and stops:
        # OPT_sat = (m-1)*q satisfied users, asynchronously.
        m, q = 8, 16
        inst = overloaded(160, m, float(q))
        result = run_message_sim(
            inst, seed=1, protocol="admission", initial="pile", max_time=300.0
        )
        assert result.n_satisfied == (m - 1) * q
        loads = np.sort(result.final_state.loads)[::-1]
        assert (loads[1:] == q).all()

    def test_monotone_satisfaction_supports_weights(self):
        inst = weighted_uniform(100, 8, slack=0.4, rng=2)
        result = run_message_sim(
            inst, seed=5, protocol="admission", initial="pile", max_time=1000.0
        )
        assert result.status == "satisfying"
        assert result.final_state.loads.sum() == pytest.approx(inst.weights.sum())

    def test_unknown_protocol_rejected(self):
        inst = uniform_slack(16, 4, slack=0.3)
        with pytest.raises(ValueError):
            run_message_sim(inst, protocol="bogus")
