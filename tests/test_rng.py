"""Seeding utilities: determinism and stream independence."""

import numpy as np

from repro.sim.rng import derive_rng, make_rng, seed_from_key, spawn_rngs


def test_make_rng_deterministic():
    assert make_rng(5).random() == make_rng(5).random()
    gen = np.random.default_rng(1)
    assert make_rng(gen) is gen


def test_spawn_rngs_independent_and_deterministic():
    a = spawn_rngs(3, 4)
    b = spawn_rngs(3, 4)
    vals_a = [g.random() for g in a]
    vals_b = [g.random() for g in b]
    assert vals_a == vals_b
    assert len(set(vals_a)) == 4  # streams differ from each other


def test_seed_from_key_stable_and_sensitive():
    s1 = seed_from_key(7, "alpha", "beta")
    assert s1 == seed_from_key(7, "alpha", "beta")
    assert s1 != seed_from_key(7, "alpha", "gamma")
    assert s1 != seed_from_key(8, "alpha", "beta")
    # key concatenation must not be ambiguous: ("ab","c") != ("a","bc")
    assert seed_from_key(1, "ab", "c") != seed_from_key(1, "a", "bc")
    assert 0 <= s1 < 2**63


def test_derive_rng():
    a = derive_rng(7, "workload").random()
    b = derive_rng(7, "protocol").random()
    assert a != b
    assert derive_rng(7, "workload").random() == a
