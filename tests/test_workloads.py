"""Instance generators and topologies: stated properties hold."""

import math

import numpy as np
import pytest

from repro.core.feasibility import greedy_assignment, is_feasible, multiplicative_slack
from repro.core.stability import is_generous
from repro.workloads import generators as gen
from repro.workloads.topology import (
    TOPOLOGIES,
    barabasi_albert_graph,
    complete_graph,
    random_regular_graph,
    ring_graph,
    star_graph,
    torus_graph,
)


class TestUniformSlack:
    def test_feasible_and_generous(self):
        for n, m, s in [(100, 8, 0.0), (1000, 32, 0.25), (64, 64, 0.5)]:
            inst = gen.uniform_slack(n, m, s)
            assert is_feasible(inst)
            assert is_generous(inst)

    def test_slack_monotone_in_parameter(self):
        loose = gen.uniform_slack(1024, 32, 0.5)
        tight = gen.uniform_slack(1024, 32, 0.0)
        assert loose.thresholds[0] > tight.thresholds[0]
        assert multiplicative_slack(loose) > multiplicative_slack(tight)

    def test_validation(self):
        with pytest.raises(ValueError):
            gen.uniform_slack(0, 4)
        with pytest.raises(ValueError):
            gen.uniform_slack(10, 4, slack=1.0)


class TestTightUniform:
    def test_exactly_tight(self):
        inst = gen.tight_uniform(128, 16)
        assert is_feasible(inst)
        assert multiplicative_slack(inst) == pytest.approx(0.0, abs=5e-3)

    def test_divisibility_required(self):
        with pytest.raises(ValueError):
            gen.tight_uniform(100, 16)


class TestTwoClass:
    def test_feasibility_enforced(self):
        inst = gen.two_class(8, 2.0, 100, 30.0, 16)
        assert is_feasible(inst)

    def test_infeasible_params_raise(self):
        with pytest.raises(ValueError):
            gen.two_class(100, 2.0, 100, 30.0, 4)

    def test_raw_mode_allows_infeasible(self):
        inst = gen.two_class(100, 2.0, 100, 30.0, 4, require_feasible=False)
        assert not greedy_assignment(inst).feasible

    def test_class_ordering_validated(self):
        with pytest.raises(ValueError):
            gen.two_class(4, 5.0, 4, 2.0, 8)

    def test_shuffled_deterministically(self):
        a = gen.two_class(4, 2.0, 20, 30.0, 8, rng=5)
        b = gen.two_class(4, 2.0, 20, 30.0, 8, rng=5)
        c = gen.two_class(4, 2.0, 20, 30.0, 8, rng=6)
        assert np.array_equal(a.thresholds, b.thresholds)
        assert not np.array_equal(a.thresholds, c.thresholds)


class TestZipf:
    def test_feasible_by_construction(self):
        inst = gen.zipf_thresholds(200, 16, alpha=1.5, rng=3)
        assert is_feasible(inst)

    def test_raw_mode(self):
        inst = gen.zipf_thresholds(200, 4, alpha=3.0, q_min=1.0, ensure="raw", rng=3)
        assert inst.n_users == 200  # may or may not be feasible

    def test_heavy_tail_exists(self):
        inst = gen.zipf_thresholds(2000, 64, alpha=1.2, rng=1)
        q = inst.thresholds
        assert q.max() > 5 * np.median(q)

    def test_invalid_ensure(self):
        with pytest.raises(ValueError):
            gen.zipf_thresholds(10, 2, ensure="maybe")


class TestOverloaded:
    def test_infeasible_by_construction(self):
        inst = gen.overloaded(100, 8, 10.0)
        assert not is_feasible(inst)

    def test_rejects_feasible_parameters(self):
        with pytest.raises(ValueError):
            gen.overloaded(80, 8, 10.0)


class TestRelatedSpeeds:
    def test_feasible_with_capacity_margin(self):
        inst = gen.related_speeds(500, 16, slack=0.25, rng=2)
        assert not inst.identical_resources
        caps = inst.capacity_for(float(inst.thresholds[0]))
        assert np.maximum(caps, 0).sum() >= 500
        assert is_feasible(inst)  # uniform thresholds: greedy failure exact

    def test_speed_ratio_bounds(self):
        inst = gen.related_speeds(100, 32, speed_ratio=8.0, rng=1)
        from repro.core.latency import SpeedScaledLatency

        speeds = [f.speed for f in inst.latencies.functions]
        assert max(speeds) / min(speeds) <= 8.0 + 1e-9


class TestMM1Farm:
    def test_feasible_capacity(self):
        inst = gen.mm1_farm(200, 16, utilisation=0.7, rng=4)
        caps = inst.capacity_for(float(inst.thresholds[0]))
        assert np.maximum(caps, 0).sum() >= 200

    def test_utilisation_validation(self):
        with pytest.raises(ValueError):
            gen.mm1_farm(100, 8, utilisation=1.5)


class TestPolynomialFarm:
    def test_feasible_capacity(self):
        inst = gen.polynomial_farm(200, 16, degree=2)
        caps = inst.capacity_for(float(inst.thresholds[0]))
        assert np.maximum(caps, 0).sum() >= 200


class TestWeighted:
    def test_weights_and_headroom(self):
        inst = gen.weighted_uniform(100, 8, slack=0.4, rng=6)
        assert not inst.unit_weights
        # First-fit-decreasing by weight fits within q (sanity of sizing):
        order = np.argsort(-inst.weights)
        loads = np.zeros(8)
        for u in order:
            r = int(np.argmin(loads))
            loads[r] += inst.weights[u]
        assert loads.max() <= inst.thresholds[0] + 1e-9


class TestRandomAccess:
    def test_degrees_and_bounds(self):
        inst = gen.random_access(50, 10, degree=3, rng=7)
        assert inst.access is not None
        assert (inst.access.degrees() == 3).all()
        with pytest.raises(ValueError):
            gen.random_access(10, 4, degree=5)


class TestTopologies:
    def test_registry_builds_connected_graphs(self):
        for name, builder in TOPOLOGIES.items():
            m = 16
            graph = builder(m, 0)
            assert graph.n_resources == m
            # every resource has at least one neighbour
            for r in range(m):
                assert graph.neighbors_of(r).size >= 1

    def test_ring_degrees(self):
        graph = ring_graph(10)
        for r in range(10):
            assert graph.neighbors_of(r).size == 2

    def test_torus_requires_square(self):
        with pytest.raises(ValueError):
            torus_graph(10)
        assert torus_graph(16).n_resources == 16

    def test_random_regular_validation(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, degree=5)
        with pytest.raises(ValueError):
            random_regular_graph(5, degree=3)  # odd product

    def test_star_hub(self):
        graph = star_graph(6)
        assert graph.neighbors_of(0).size == 5

    def test_complete(self):
        graph = complete_graph(5)
        for r in range(5):
            assert graph.neighbors_of(r).size == 4

    def test_barabasi_albert_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(4, attach=0)


def test_generators_deterministic_in_seed():
    for build in (
        lambda s: gen.zipf_thresholds(50, 8, rng=s),
        lambda s: gen.related_speeds(50, 8, rng=s),
        lambda s: gen.weighted_uniform(50, 8, rng=s),
    ):
        a, b, c = build(1), build(1), build(2)
        assert np.array_equal(a.thresholds, b.thresholds)
        assert np.array_equal(a.weights, b.weights)
        same = np.array_equal(a.thresholds, c.thresholds) and np.array_equal(
            a.weights, c.weights
        )
        same_lat = a.latencies.functions == c.latencies.functions
        assert not (same and same_lat)
