"""Certificate checkers: the slow oracles agree with the fast paths."""

import numpy as np
import pytest

from repro.core.certify import (
    certify_assignment_counts,
    certify_max_satisfied_witness,
    certify_satisfying,
    certify_stable,
)
from repro.core.feasibility import max_satisfied
from repro.core.stability import is_stable
from repro.core.state import State
from repro.sim.engine import run
from repro.core.protocols import QoSSamplingProtocol

from conftest import random_small_instance


def test_counts_certificate_on_random_states():
    rng = np.random.default_rng(2)
    for _ in range(30):
        inst = random_small_instance(rng)
        state = State.uniform_random(inst, rng)
        ok, issues = certify_assignment_counts(state)
        assert ok, issues


def test_counts_certificate_catches_corruption(small_uniform):
    state = State(small_uniform, np.asarray([0] * 12))
    state.loads[1] += 1  # corrupt
    ok, issues = certify_assignment_counts(state)
    assert not ok and issues


def test_satisfying_certificate_matches_fast_path():
    rng = np.random.default_rng(5)
    for _ in range(40):
        inst = random_small_instance(rng)
        state = State.uniform_random(inst, rng)
        ok, _ = certify_satisfying(state)
        assert ok == state.is_satisfying()


@pytest.mark.parametrize("polite", [False, True])
def test_stability_certificate_matches_fast_path(polite):
    rng = np.random.default_rng(7)
    for _ in range(40):
        inst = random_small_instance(rng)
        state = State.uniform_random(inst, rng)
        ok, _ = certify_stable(state, polite=polite)
        assert ok == is_stable(state, polite=polite)


def test_engine_final_states_certify(small_uniform):
    result = run(
        small_uniform, QoSSamplingProtocol(), seed=3, initial="pile",
        keep_state=True,
    )
    ok, issues = certify_satisfying(result.final_state)
    assert ok, issues


def test_trap_certifies_stable(trap_state):
    ok, _ = certify_stable(trap_state)
    assert ok
    sat_ok, sat_issues = certify_satisfying(trap_state)
    assert not sat_ok and sat_issues


def test_opt_sat_witness_certificate():
    rng = np.random.default_rng(11)
    for _ in range(20):
        inst = random_small_instance(rng, max_n=6, max_m=3, max_q=5)
        result = max_satisfied(inst)
        assert result.exact
        ok, issues = certify_max_satisfied_witness(inst, result)
        assert ok, (inst.thresholds, issues)


def test_opt_sat_witness_certificate_flags_bad_claim(small_uniform):
    from repro.core.feasibility import MaxSatisfiedResult

    state = State.worst_case_pile(small_uniform)  # satisfies nobody
    bogus = MaxSatisfiedResult(
        n_satisfied=12, exact=True, method="bogus", state=state
    )
    ok, issues = certify_max_satisfied_witness(small_uniform, bogus)
    assert not ok and issues
