"""Failure/churn events: instance transformation semantics."""

import math

import numpy as np
import pytest

from repro.core.instance import AccessMap, Instance
from repro.core.latency import IdentityLatency, LatencyProfile, UnavailableLatency
from repro.core.state import State
from repro.sim.events import (
    ResourceFailure,
    ResourceRecovery,
    UserArrival,
    UserDeparture,
)


@pytest.fixture
def inst():
    return Instance.identical_machines([4.0] * 8, 4)


@pytest.fixture
def state(inst):
    return State(inst, np.asarray([0, 0, 1, 1, 2, 2, 3, 3]))


def test_resource_failure(inst, state, rng):
    new_inst, new_state = ResourceFailure(5, 2).apply(inst, state, rng)
    assert isinstance(new_inst.latencies[2], UnavailableLatency)
    # users stay where they were; the failed resource's users are unsat.
    assert list(new_state.assignment) == list(state.assignment)
    assert not new_state.satisfied_mask()[4]
    assert not new_state.satisfied_mask()[5]
    assert new_state.satisfied_mask()[0]
    assert math.isinf(new_state.user_latencies()[4])


def test_resource_recovery(inst, state, rng):
    failed_inst, failed_state = ResourceFailure(5, 2).apply(inst, state, rng)
    rec_inst, rec_state = ResourceRecovery(9, 2, IdentityLatency()).apply(
        failed_inst, failed_state, rng
    )
    assert isinstance(rec_inst.latencies[2], IdentityLatency)
    assert rec_state.is_satisfying()


def test_recovery_requires_failed_resource(inst, state, rng):
    with pytest.raises(ValueError):
        ResourceRecovery(9, 2, IdentityLatency()).apply(inst, state, rng)


def test_failure_out_of_range(inst, state, rng):
    with pytest.raises(ValueError):
        ResourceFailure(5, 9).apply(inst, state, rng)


def test_user_arrival(inst, state, rng):
    ev = UserArrival(3, np.asarray([2.0, 2.0, 2.0]), np.asarray([1.0, 1.0, 2.0]))
    new_inst, new_state = ev.apply(inst, state, rng)
    assert new_inst.n_users == 11
    assert new_inst.thresholds[-1] == 2.0
    assert new_inst.weights[-1] == 2.0
    assert new_state.loads.sum() == pytest.approx(8 + 4.0)
    new_state.check_invariants()


def test_user_arrival_validation():
    with pytest.raises(ValueError):
        UserArrival(0, np.asarray([]))
    with pytest.raises(ValueError):
        UserArrival(0, np.asarray([2.0]), np.asarray([1.0, 1.0]))


def test_user_departure_random(inst, state, rng):
    new_inst, new_state = UserDeparture(2, count=3).apply(inst, state, rng)
    assert new_inst.n_users == 5
    assert new_state.loads.sum() == 5
    new_state.check_invariants()


def test_user_departure_explicit(inst, state, rng):
    new_inst, new_state = UserDeparture(2, users=np.asarray([0, 7])).apply(
        inst, state, rng
    )
    assert new_inst.n_users == 6
    # remaining users keep their resources (indices compacted)
    assert list(new_state.assignment) == [0, 1, 1, 2, 2, 3]


def test_user_departure_validation(inst, state, rng):
    with pytest.raises(ValueError):
        UserDeparture(0)
    with pytest.raises(ValueError):
        UserDeparture(0, users=np.asarray([99])).apply(inst, state, rng)
    with pytest.raises(ValueError):
        UserDeparture(0, users=np.arange(8)).apply(inst, state, rng)


def test_user_departure_count_too_large_raises(inst, state, rng):
    # Removing all n (or more) users is impossible and must be loud, not a
    # silent clamp to n-1.
    with pytest.raises(ValueError, match="at least one user must remain"):
        UserDeparture(0, count=8).apply(inst, state, rng)
    with pytest.raises(ValueError, match="at least one user must remain"):
        UserDeparture(0, count=100).apply(inst, state, rng)


def test_user_departure_count_at_limit(inst, state, rng):
    # count == n - 1 is the largest legal request: exactly one user stays.
    new_inst, new_state = UserDeparture(0, count=7).apply(inst, state, rng)
    assert new_inst.n_users == 1
    new_state.check_invariants()


def test_events_require_complete_access(rng):
    inst = Instance(
        thresholds=np.asarray([2.0, 2.0]),
        latencies=LatencyProfile.identical(2),
        access=AccessMap([[0], [1]], 2),
    )
    state = State(inst, np.asarray([0, 1]))
    with pytest.raises(NotImplementedError):
        ResourceFailure(0, 0).apply(inst, state, rng)


def test_negative_round_rejected():
    with pytest.raises(ValueError):
        ResourceFailure(-1, 0)


def test_describe():
    assert ResourceFailure(5, 2).describe() == {
        "type": "ResourceFailure",
        "round": 5,
        "resource": 2,
    }
    assert UserArrival(1, np.asarray([2.0])).describe()["n_arriving"] == 1


def test_describe_round_trips_all_event_types():
    """Every event type reports its own class name, round, and payload."""
    events = {
        "ResourceFailure": ResourceFailure(3, 1),
        "ResourceRecovery": ResourceRecovery(7, 1, IdentityLatency()),
        "UserArrival": UserArrival(2, np.asarray([2.0, 3.0])),
        "UserDeparture": UserDeparture(4, count=2),
    }
    for name, ev in events.items():
        d = ev.describe()
        assert d["type"] == name == type(ev).__name__
        assert d["round"] == ev.round_index
    assert events["ResourceRecovery"].describe()["resource"] == 1
    assert "IdentityLatency" in events["ResourceRecovery"].describe()["latency"]
    assert events["UserArrival"].describe()["n_arriving"] == 2
    assert events["UserDeparture"].describe()["count"] == 2
    # explicit-user departures report the actual list size, not ``count``
    assert UserDeparture(4, users=np.asarray([0, 1, 2])).describe()["count"] == 3


def test_recovery_refuses_double_recovery(inst, state, rng):
    """Recovering twice (or a healthy resource) is refused, not overwritten."""
    failed_inst, failed_state = ResourceFailure(1, 2).apply(inst, state, rng)
    rec_inst, rec_state = ResourceRecovery(2, 2, IdentityLatency()).apply(
        failed_inst, failed_state, rng
    )
    with pytest.raises(ValueError, match="not failed"):
        ResourceRecovery(3, 2, IdentityLatency()).apply(rec_inst, rec_state, rng)
