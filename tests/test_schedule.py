"""Activation schedules: shapes, statistics, fairness."""

import numpy as np
import pytest

from repro.sim.schedule import (
    AlphaSchedule,
    CustomSchedule,
    PartitionSchedule,
    StaggeredSchedule,
    SynchronousSchedule,
)


def test_synchronous_all_active(rng):
    s = SynchronousSchedule()
    mask = s.active_mask(0, 10, rng)
    assert mask.all() and mask.shape == (10,)


def test_alpha_statistics():
    rng = np.random.default_rng(0)
    s = AlphaSchedule(0.3)
    total = sum(int(s.active_mask(i, 100, rng).sum()) for i in range(300))
    assert 8_000 < total < 10_000  # expectation 9000


def test_alpha_one_is_synchronous(rng):
    assert AlphaSchedule(1.0).active_mask(0, 5, rng).all()


def test_alpha_validation():
    with pytest.raises(ValueError):
        AlphaSchedule(0.0)
    with pytest.raises(ValueError):
        AlphaSchedule(1.2)


class TestPartition:
    def test_every_user_exactly_once_per_period(self, rng):
        s = PartitionSchedule(4)
        s.reset(20, rng)
        seen = np.zeros(20, dtype=int)
        for r in range(4):
            seen += s.active_mask(r, 20, rng).astype(int)
        assert (seen == 1).all()

    def test_disjoint_blocks(self, rng):
        s = PartitionSchedule(3)
        s.reset(12, rng)
        masks = [s.active_mask(r, 12, rng) for r in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not np.any(masks[i] & masks[j])

    def test_repartitions_on_population_change(self, rng):
        s = PartitionSchedule(2)
        s.reset(10, rng)
        mask = s.active_mask(0, 14, rng)  # population grew mid-run
        assert mask.shape == (14,)

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionSchedule(0)


def test_staggered_exactly_one(rng):
    s = StaggeredSchedule()
    for r in range(50):
        mask = s.active_mask(r, 9, rng)
        assert int(mask.sum()) == 1


def test_staggered_covers_everyone_eventually():
    rng = np.random.default_rng(1)
    s = StaggeredSchedule()
    seen = np.zeros(6, dtype=bool)
    for r in range(300):
        seen |= s.active_mask(r, 6, rng)
    assert seen.all()


def test_custom_schedule(rng):
    s = CustomSchedule(lambda r, n, g: np.arange(n) % 2 == r % 2, name="evens")
    assert s.active_mask(0, 6, rng).tolist() == [True, False] * 3
    assert s.describe()["name"] == "evens"
    bad = CustomSchedule(lambda r, n, g: np.ones(n + 1, dtype=bool))
    with pytest.raises(ValueError):
        bad.active_mask(0, 4, rng)
