"""The example scripts run end-to-end and print their headline results."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "feasible (exact check):   True" in out
    assert "satisfying" in out
    assert "permit" in out


def test_datacenter(capsys):
    out = run_example("datacenter_autoscaling.py", capsys)
    assert "SLO attainment" in out
    assert "latency-critical: 100.0%" in out
    assert "jobs remaining on failed servers: 0" in out


def test_overload_admission(capsys):
    out = run_example("overload_admission.py", capsys)
    assert "OPT_sat (exact) = 496" in out
    assert "selfish-rebalance" in out
    # balancing collapses; permits protect ~OPT
    assert "100.0%" in out
    assert "0.0%" in out


def test_distributed_agents(capsys):
    out = run_example("distributed_agents.py", capsys)
    assert "round engine:  satisfying" in out
    assert "message agents: satisfying" in out
    assert "LoadQuery" in out


def test_capacity_planning(capsys):
    out = run_example("capacity_planning.py", capsys)
    assert "feasibility floor" in out
    assert "satisfied" in out
    assert "fluid forecast" in out


@pytest.mark.slow
def test_wireless_channels(capsys):
    out = run_example("wireless_channels.py", capsys)
    assert "full band scan" in out
    assert "adjacent only" in out
    assert "local trap" in out
