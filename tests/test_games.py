"""Game-theoretic substrate: Nash equilibria, stable-state enumeration, PoA."""

import numpy as np
import pytest

from repro.core.feasibility import max_satisfied
from repro.core.instance import Instance
from repro.core.potential import rosenthal_potential
from repro.core.protocols import QoSSamplingProtocol
from repro.core.stability import is_stable
from repro.core.state import State
from repro.games.congestion import (
    is_latency_nash,
    latency_improving_move,
    nash_by_best_response,
    rosenthal_gap,
)
from repro.games.satisfaction import (
    empirical_stable_satisfaction,
    enumerate_stable_states,
    satisfaction_price_of_anarchy,
    worst_stable_satisfaction,
)

from conftest import random_small_instance


class TestCongestion:
    def test_best_response_reaches_nash(self):
        rng = np.random.default_rng(13)
        for _ in range(25):
            inst = random_small_instance(rng, max_n=8, max_m=4)
            eq = nash_by_best_response(inst, seed=rng)
            assert is_latency_nash(eq)

    def test_rosenthal_decreases_along_dynamics(self):
        inst = Instance.identical_machines([9.0] * 10, 3)
        state = State.worst_case_pile(inst)
        phi = rosenthal_potential(state)
        while True:
            move = latency_improving_move(state)
            if move is None:
                break
            state.move_user(*move)
            new_phi = rosenthal_potential(state)
            assert new_phi < phi
            phi = new_phi

    def test_nash_on_identical_machines_is_balanced(self):
        inst = Instance.identical_machines([99.0] * 12, 4)
        eq = nash_by_best_response(inst, seed=1)
        assert eq.loads.max() - eq.loads.min() <= 1

    def test_rosenthal_gap_zero_at_equilibrium(self):
        inst = Instance.identical_machines([99.0] * 8, 2)
        eq = nash_by_best_response(inst, seed=0)
        assert rosenthal_gap(eq) == pytest.approx(0.0)

    def test_improving_move_none_at_nash(self):
        inst = Instance.identical_machines([9.0] * 4, 2)
        state = State(inst, np.asarray([0, 0, 1, 1]))
        assert latency_improving_move(state) is None


class TestSatisfactionGame:
    def test_stable_states_match_is_stable(self):
        rng = np.random.default_rng(3)
        inst = random_small_instance(rng, max_n=4, max_m=3, max_q=4)
        from itertools import product

        expected = 0
        for cand in product(range(inst.n_resources), repeat=inst.n_users):
            if is_stable(State(inst, np.asarray(cand, dtype=np.int64))):
                expected += 1
        found = sum(1 for _ in enumerate_stable_states(inst))
        assert found == expected > 0

    def test_trap_poa_exceeds_one(self, trap_instance):
        # OPT satisfies all 7; the trap state satisfies only 6.
        worst, witness = worst_stable_satisfaction(trap_instance)
        assert worst <= 6
        assert is_stable(witness)
        poa = satisfaction_price_of_anarchy(trap_instance)
        assert poa >= 7 / 6 - 1e-9

    def test_generous_instance_poa_is_one(self):
        inst = Instance.identical_machines([4.0] * 8, 4)  # m*q = 16 >= 8
        assert satisfaction_price_of_anarchy(inst) == pytest.approx(1.0)

    def test_enumeration_limit(self):
        inst = Instance.identical_machines([4.0] * 30, 4)
        with pytest.raises(ValueError):
            list(enumerate_stable_states(inst, limit=10))

    def test_worst_stable_consistent_with_opt(self):
        rng = np.random.default_rng(21)
        for _ in range(20):
            inst = random_small_instance(rng, max_n=5, max_m=3, max_q=5)
            worst, _ = worst_stable_satisfaction(inst)
            opt = max_satisfied(inst).n_satisfied
            assert worst <= opt

    def test_empirical_stable_satisfaction(self, trap_instance):
        counts = empirical_stable_satisfaction(
            trap_instance, QoSSamplingProtocol(), n_runs=6, max_rounds=2000, seed=2
        )
        assert counts.shape == (6,)
        assert np.all(counts <= trap_instance.n_users)
        assert np.all(counts >= 0)


class TestLatencyCacheDifferential:
    """The cached ``ell(x + w)`` fast path must be numerically invisible:
    every game-layer answer is bit-identical with caching disabled."""

    def test_best_response_identical_without_caching(self):
        from repro.core.state import cache_stats, caching_disabled, reset_cache_stats

        rng = np.random.default_rng(77)
        for _ in range(10):
            inst = random_small_instance(rng)
            reset_cache_stats()
            cached_nash = nash_by_best_response(inst, seed=5)
            stats = cache_stats()
            with caching_disabled():
                plain_nash = nash_by_best_response(inst, seed=5)
            assert np.array_equal(cached_nash.assignment, plain_nash.assignment)
            assert rosenthal_potential(cached_nash) == rosenthal_potential(plain_nash)
            # the fast path was actually exercised, not silently bypassed
            assert stats["misses"] > 0

    def test_improving_move_identical_without_caching(self, trap_state):
        from repro.core.state import caching_disabled

        cached_move = latency_improving_move(trap_state)
        with caching_disabled():
            plain_move = latency_improving_move(trap_state)
        assert cached_move == plain_move

    def test_worst_stable_identical_without_caching(self):
        from repro.core.state import caching_disabled

        rng = np.random.default_rng(78)
        for _ in range(5):
            inst = random_small_instance(rng, max_n=5, max_m=3, max_q=5)
            worst_cached, _ = worst_stable_satisfaction(inst)
            with caching_disabled():
                worst_plain, _ = worst_stable_satisfaction(inst)
            assert worst_cached == worst_plain
