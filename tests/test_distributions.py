"""Convergence-time distribution analysis."""

import math

import numpy as np
import pytest

from repro.analysis.distributions import (
    geometric_tail_fit,
    survival_function,
    whp_quantile,
)


def test_survival_function_basics():
    ts, probs = survival_function([1, 1, 2, 3])
    assert list(ts) == [1, 2, 3]
    assert probs[0] == pytest.approx(0.5)   # P(T > 1)
    assert probs[-1] == pytest.approx(0.0)  # P(T > max)
    with pytest.raises(ValueError):
        survival_function([float("nan")])


def test_geometric_fit_recovers_rate():
    rng = np.random.default_rng(0)
    # geometric with success prob 0.3: survival decays as 0.7**t
    samples = rng.geometric(0.3, size=20_000)
    fit = geometric_tail_fit(samples)
    assert fit.rate == pytest.approx(0.7, abs=0.03)
    assert fit.r_squared > 0.99
    assert fit.halving_time() == pytest.approx(math.log(0.5) / math.log(0.7), rel=0.1)


def test_geometric_fit_needs_tail_points():
    with pytest.raises(ValueError):
        geometric_tail_fit([5, 5, 5, 5])


def test_whp_quantile_on_geometric():
    rng = np.random.default_rng(1)
    samples = rng.geometric(0.5, size=5_000)
    t_star = whp_quantile(samples, delta=0.05, gamma=0.05)
    # true P(T > t) = 0.5**t: 0.5**5 ~ 0.031 < 0.05, so t* should be ~5-7
    assert 4 <= t_star <= 8
    assert float(np.mean(np.asarray(samples) > t_star)) <= 0.05


def test_whp_quantile_small_sample_raises():
    with pytest.raises(ValueError):
        whp_quantile([1, 2, 3], delta=0.05)


def test_whp_quantile_validation():
    with pytest.raises(ValueError):
        whp_quantile([1] * 100, delta=1.5)


def test_whp_quantile_on_protocol_runs():
    """End-to-end: a w.h.p. convergence bound for the sampling protocol."""
    from repro.sim.parallel import RunSpec, replicate

    spec = RunSpec(
        generator="uniform_slack",
        generator_kwargs={"n": 512, "m": 16, "slack": 0.25},
        initial="pile",
        label="whp",
    )
    results = replicate(spec, 400, base_seed=9)
    rounds = [r.rounds for r in results if r.status == "satisfying"]
    assert len(rounds) == 400
    t_star = whp_quantile(rounds, delta=0.1, gamma=0.05)
    # convergence concentrates hard: the 90% w.h.p. bound is single-digit
    assert t_star <= 12
