"""Message-passing simulator: network semantics and protocol agents."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.msgsim.agents import ResourceAgent, UserAgent, resource_id, user_id
from repro.msgsim.messages import Join, Leave, LoadQuery, LoadReply, Tick
from repro.msgsim.network import ConstantDelay, ExponentialDelay, Network
from repro.msgsim.runner import run_message_sim
from repro.core.latency import IdentityLatency
from repro.core.instance import AccessMap
from repro.core.latency import LatencyProfile


class _Sink:
    """Test agent that records everything it receives."""

    def __init__(self, agent_id):
        self.agent_id = agent_id
        self.received = []

    def handle(self, msg, network):
        self.received.append((network.now, msg))


class TestNetwork:
    def test_fifo_by_time_with_sequence_tiebreak(self):
        net = Network(delay_model=ConstantDelay(0.5), seed=0)
        sink = _Sink("sink")
        net.register(sink)
        net.send("sink", Tick("a"))
        net.send("sink", Tick("b"))
        net.run(max_events=10)
        assert [m.sender for _, m in sink.received] == ["a", "b"]

    def test_unknown_agent_rejected(self):
        net = Network(seed=0)
        with pytest.raises(KeyError):
            net.send("ghost", Tick("x"))

    def test_duplicate_agent_rejected(self):
        net = Network(seed=0)
        net.register(_Sink("a"))
        with pytest.raises(ValueError):
            net.register(_Sink("a"))

    def test_message_counting_excludes_timers(self):
        net = Network(delay_model=ConstantDelay(0.1), seed=0)
        sink = _Sink("sink")
        net.register(sink)
        net.send("sink", Tick("x"))
        net.schedule_timer("sink", 0.2, Tick("timer"))
        net.run(max_events=10)
        assert net.total_messages == 1

    def test_in_flight_moves_bookkeeping(self):
        net = Network(delay_model=ConstantDelay(0.1), seed=0)
        sink = _Sink("sink")
        net.register(sink)
        net.send("sink", Join("u", 1.0))
        assert net.in_flight_moves == 1
        net.run(max_events=10)
        assert net.in_flight_moves == 0

    def test_determinism(self):
        def build():
            net = Network(delay_model=ExponentialDelay(0.1), seed=9)
            sink = _Sink("sink")
            net.register(sink)
            for i in range(10):
                net.send("sink", Tick(str(i)))
            net.run(max_events=100)
            return [(t, m.sender) for t, m in sink.received]

        assert build() == build()

    def test_stop_condition(self):
        net = Network(delay_model=ConstantDelay(0.01), seed=0)
        sink = _Sink("sink")
        net.register(sink)
        for i in range(100):
            net.send("sink", Tick(str(i)))
        reason = net.run(stop_condition=lambda n: len(sink.received) >= 10, check_every=1)
        assert reason == "stopped"
        assert len(sink.received) >= 10

    def test_max_time(self):
        net = Network(delay_model=ConstantDelay(5.0), seed=0)
        sink = _Sink("sink")
        net.register(sink)
        net.send("sink", Tick("x"))
        assert net.run(max_time=1.0) == "max_time"


class TestResourceAgent:
    def test_load_query_replies(self):
        net = Network(delay_model=ConstantDelay(0.01), seed=0)
        res = ResourceAgent(0, IdentityLatency(), initial_load=3.0)
        sink = _Sink("user:0")
        net.register(res)
        net.register(sink)
        net.send(res.agent_id, LoadQuery("user:0", weight=1.0, probe=False))
        net.send(res.agent_id, LoadQuery("user:0", weight=1.0, probe=True))
        net.run(max_events=10)
        replies = [m for _, m in sink.received if isinstance(m, LoadReply)]
        own = next(r for r in replies if not r.probe)
        probe = next(r for r in replies if r.probe)
        assert own.latency == pytest.approx(3.0)
        assert probe.latency == pytest.approx(4.0)

    def test_join_leave_update_load(self):
        net = Network(delay_model=ConstantDelay(0.01), seed=0)
        res = ResourceAgent(0, IdentityLatency())
        net.register(res)
        net.send(res.agent_id, Join("user:0", 2.0))
        net.send(res.agent_id, Leave("user:0", 2.0))
        net.run(max_events=10)
        assert res.load == pytest.approx(0.0)

    def test_negative_load_detected(self):
        net = Network(delay_model=ConstantDelay(0.01), seed=0)
        res = ResourceAgent(0, IdentityLatency())
        net.register(res)
        net.send(res.agent_id, Leave("user:0", 2.0))
        with pytest.raises(AssertionError):
            net.run(max_events=10)


class TestRunner:
    def test_converges_on_generous_instance(self):
        inst = Instance.identical_machines([4.0] * 32, 16)
        result = run_message_sim(inst, seed=5, initial="pile", max_time=500.0)
        assert result.status == "satisfying"
        assert result.final_state.is_satisfying()
        assert result.total_moves >= 1
        result.final_state.check_invariants()

    def test_user_conservation(self):
        inst = Instance.identical_machines([3.0] * 24, 12)
        result = run_message_sim(inst, seed=2, initial="random", max_time=300.0)
        assert result.final_state.loads.sum() == pytest.approx(24)

    def test_message_counts_present(self):
        inst = Instance.identical_machines([4.0] * 16, 8)
        result = run_message_sim(inst, seed=1, initial="pile", max_time=300.0)
        assert result.total_messages == sum(result.message_counts.values())
        assert result.message_counts.get("LoadQuery", 0) > 0
        # every migration is one Leave + one Join (plus initial joins)
        assert result.message_counts.get("Leave", 0) == result.total_moves
        assert result.message_counts.get("Join", 0) == result.total_moves + 16

    def test_determinism(self):
        inst = Instance.identical_machines([4.0] * 16, 8)
        a = run_message_sim(inst, seed=7, initial="pile", max_time=200.0)
        b = run_message_sim(inst, seed=7, initial="pile", max_time=200.0)
        assert a.time == b.time
        assert a.total_messages == b.total_messages
        assert list(a.final_state.assignment) == list(b.final_state.assignment)

    def test_budget_statuses(self):
        inst = Instance.identical_machines([2.0] * 12, 2)  # infeasible (12 > 4)
        result = run_message_sim(inst, seed=3, initial="pile", max_time=5.0)
        assert result.status in ("max_time", "max_events")
        assert not result.converged

    def test_rejects_restricted_access(self):
        inst = Instance(
            thresholds=np.asarray([2.0, 2.0]),
            latencies=LatencyProfile.identical(2),
            access=AccessMap([[0], [1]], 2),
        )
        with pytest.raises(NotImplementedError):
            run_message_sim(inst)

    def test_invalid_initial(self):
        inst = Instance.identical_machines([4.0] * 4, 2)
        with pytest.raises(ValueError):
            run_message_sim(inst, initial="bogus")


def test_agent_id_helpers():
    assert user_id(3) == "user:3"
    assert resource_id(2) == "res:2"


def test_user_agent_skips_pipelined_ticks():
    """A user mid-probe ignores extra ticks instead of double-probing."""
    rng = np.random.default_rng(0)
    net = Network(delay_model=ConstantDelay(10.0), seed=0)  # very slow links
    res = ResourceAgent(0, IdentityLatency(), initial_load=5.0)
    user = UserAgent(
        0,
        threshold=1.0,
        weight=1.0,
        initial_resource=0,
        n_resources=1,
        tick_interval=0.5,
        tick_jitter=0.0,
        rng=rng,
    )
    net.register(res)
    net.register(user)
    user.start(net)
    net.run(max_time=5.0, max_events=100)
    # several ticks passed but at most one probe can be outstanding
    assert user.activations <= 2


def test_orphaned_wrong_resource_reply_terminates_activation():
    """Regression: an orphaned reply must never strand the state machine.

    A user in WAIT_OWN that receives a non-probe LoadReply naming a
    *different* resource (a reply its request never asked for — injected
    here by hand) used to keep waiting forever: the reply was swallowed,
    the real reply never came, and every future tick was skipped.  The
    activation must instead terminate in IDLE so the next tick recovers.
    """
    rng = np.random.default_rng(0)
    net = Network(delay_model=ConstantDelay(0.01), seed=0)
    res = ResourceAgent(0, IdentityLatency(), initial_load=5.0)
    user = UserAgent(
        0,
        threshold=1.0,
        weight=1.0,
        initial_resource=0,
        n_resources=2,
        tick_interval=0.5,
        tick_jitter=0.0,
        rng=rng,
    )
    net.register(res)
    net.register(user)
    user.state = user.WAIT_OWN  # mid-activation, awaiting res:0's reply
    orphan = LoadReply(
        "res:1", resource=1, load=0.0, latency=0.0, probe=False
    )
    user.handle(orphan, net)
    assert user.state == user.IDLE  # terminated, not stranded
    # and the user is fully operational afterwards
    user.handle(Tick(user.agent_id), net)
    assert user.state == user.WAIT_OWN
