"""Unit tests for Instance and AccessMap."""

import numpy as np
import pytest

from repro.core.instance import AccessMap, Instance
from repro.core.latency import LatencyProfile, MM1Latency


class TestAccessMap:
    def test_complete(self):
        access = AccessMap.complete(3, 4)
        assert access.is_complete()
        assert list(access.allowed(0)) == [0, 1, 2, 3]
        assert access.degree(2) == 4

    def test_from_matrix(self):
        matrix = np.asarray([[True, False, True], [False, True, False]])
        access = AccessMap.from_matrix(matrix)
        assert list(access.allowed(0)) == [0, 2]
        assert list(access.allowed(1)) == [1]
        assert not access.is_complete()

    def test_empty_row_rejected(self):
        with pytest.raises(ValueError):
            AccessMap([[0], []], 2)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            AccessMap([[0, 0]], 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            AccessMap([[0, 5]], 2)

    def test_contains_vectorized(self):
        access = AccessMap([[0, 2], [1]], 3)
        users = np.asarray([0, 0, 1, 1])
        resources = np.asarray([0, 1, 1, 2])
        assert list(access.contains(users, resources)) == [True, False, True, False]

    def test_sample_respects_allowed_sets(self, rng):
        access = AccessMap([[0, 2], [1], [0, 1, 2]], 3)
        users = np.asarray([0, 1, 2] * 200)
        samples = access.sample(users, rng)
        for u, r in zip(users, samples):
            assert r in access.allowed(int(u))

    def test_sample_is_roughly_uniform(self, rng):
        access = AccessMap([[0, 1, 2, 3]], 4)
        samples = access.sample(np.zeros(8000, dtype=np.int64), rng)
        counts = np.bincount(samples, minlength=4)
        assert counts.min() > 1700  # expectation 2000 each

    def test_roundtrip_to_lists(self):
        allowed = [[0, 2], [1], [0, 1, 2]]
        access = AccessMap(allowed, 3)
        assert access.to_lists() == allowed


class TestInstance:
    def test_basic_construction(self, small_uniform):
        assert small_uniform.n_users == 12
        assert small_uniform.n_resources == 4
        assert small_uniform.unit_weights
        assert small_uniform.identical_resources

    def test_thresholds_frozen(self, small_uniform):
        with pytest.raises(ValueError):
            small_uniform.thresholds[0] = 99.0

    def test_validation_errors(self):
        profile = LatencyProfile.identical(2)
        with pytest.raises(ValueError):
            Instance(thresholds=np.asarray([]), latencies=profile)
        with pytest.raises(ValueError):
            Instance(thresholds=np.asarray([0.0, 1.0]), latencies=profile)
        with pytest.raises(ValueError):
            Instance(thresholds=np.asarray([np.inf, 1.0]), latencies=profile)
        with pytest.raises(ValueError):
            Instance(
                thresholds=np.asarray([1.0, 2.0]),
                latencies=profile,
                weights=np.asarray([1.0]),
            )
        with pytest.raises(ValueError):
            Instance(
                thresholds=np.asarray([1.0, 2.0]),
                latencies=profile,
                weights=np.asarray([1.0, -1.0]),
            )
        with pytest.raises(TypeError):
            Instance(thresholds=np.asarray([1.0]), latencies="nope")  # type: ignore[arg-type]

    def test_access_size_validation(self):
        profile = LatencyProfile.identical(2)
        with pytest.raises(ValueError):
            Instance(
                thresholds=np.asarray([1.0, 2.0]),
                latencies=profile,
                access=AccessMap([[0]], 2),
            )
        with pytest.raises(ValueError):
            Instance(
                thresholds=np.asarray([1.0]),
                latencies=profile,
                access=AccessMap([[0]], 1),
            )

    def test_accessible_default_and_restricted(self):
        inst = Instance(
            thresholds=np.asarray([1.0, 2.0]),
            latencies=LatencyProfile.identical(3),
            access=AccessMap([[0, 1], [2]], 3),
        )
        assert list(inst.accessible(0)) == [0, 1]
        assert list(inst.accessible(1)) == [2]
        flat = Instance.identical_machines([1.0, 2.0], 3)
        assert list(flat.accessible(1)) == [0, 1, 2]

    def test_related_machines_constructor(self):
        inst = Instance.related_machines([2.0, 2.0], [1.0, 4.0])
        assert not inst.identical_resources
        assert list(inst.capacity_for(2.0)) == [2, 8]

    def test_identical_resources_flag(self):
        inst = Instance(
            thresholds=np.asarray([1.0]),
            latencies=LatencyProfile([MM1Latency(4.0)]),
        )
        assert not inst.identical_resources

    def test_describe(self, small_uniform):
        d = small_uniform.describe()
        assert d["n_users"] == 12
        assert d["complete_access"]
        assert d["threshold_min"] == 4.0

    def test_total_capacity_at_min_threshold(self, small_uniform):
        # 4 machines x capacity 4 at q=4.
        assert small_uniform.total_capacity_at_min_threshold() == 16
