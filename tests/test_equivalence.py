"""Differential tests: cached and uncached state queries are bit-identical.

The tentpole performance layer memoizes ``State.resource_latencies`` /
``user_latencies`` / ``satisfied_mask`` behind a generation counter and
vectorizes several per-user loops.  None of that may change *any* result:
the equivalence is enforced, not assumed, by running the same seeds with
the cache enabled and disabled over a protocol × schedule × topology grid
and requiring identical ``RunResult.summary()`` dicts (same statuses,
rounds, moves, messages) and identical trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import CACHING, State, caching_disabled
from repro.sim.engine import run
from repro.sim.metrics import Recorder
from repro.sim.parallel import RunSpec, replicate, run_spec

# protocol name -> protocol kwargs (registry names; built per run)
PROTOCOL_GRID = [
    ("qos-sampling", {}),
    ("qos-sampling", {"rate": {"name": "slack-proportional"}}),
    ("qos-sampling", {"rate": {"name": "adaptive-backoff"}}),
    ("multi-probe", {"d": 2}),
    ("permit", {}),
    ("best-response", {}),
    ("sweep-best-response", {}),
    ("sweep-best-response", {"polite": False}),
    ("naive-greedy", {}),
    ("blind-random", {}),
    ("neighborhood", {"topology": "ring", "m": 8}),
]

SCHEDULE_GRID = [
    ("synchronous", {}),
    ("alpha", {"alpha": 0.5}),
]

# generator name -> kwargs; covers unit weights, weighted users, and an
# access topology (the constrained-assignment code paths).
GENERATOR_GRID = [
    ("uniform_slack", {"n": 96, "m": 8, "slack": 0.25}),
    ("weighted_uniform", {"n": 96, "m": 8}),
    ("random_access", {"n": 96, "m": 8, "degree": 4}),
]


def _summary(spec: RunSpec, seed: int) -> dict:
    return run_spec(spec, seed).summary()


@pytest.mark.parametrize("protocol,protocol_kwargs", PROTOCOL_GRID)
@pytest.mark.parametrize("schedule,schedule_kwargs", SCHEDULE_GRID)
@pytest.mark.parametrize("generator,generator_kwargs", GENERATOR_GRID)
def test_cached_and_uncached_runs_bit_identical(
    protocol, protocol_kwargs, schedule, schedule_kwargs, generator, generator_kwargs
):
    spec = RunSpec(
        generator=generator,
        generator_kwargs=generator_kwargs,
        protocol=protocol,
        protocol_kwargs=protocol_kwargs,
        schedule=schedule,
        schedule_kwargs=schedule_kwargs,
        max_rounds=300,
        initial="pile",
    )
    assert CACHING.enabled
    cached = _summary(spec, seed=1234)
    with caching_disabled():
        uncached = _summary(spec, seed=1234)
    assert CACHING.enabled
    assert cached == uncached


def test_cached_and_uncached_trajectories_identical(small_uniform):
    from repro.core.potential import unsatisfied_count
    from repro.registry import build_protocol

    def one(cache: bool):
        recorder = Recorder(potentials={"unsat": unsatisfied_count}, snapshot_every=2)
        if cache:
            result = run(
                small_uniform,
                build_protocol("qos-sampling"),
                seed=7,
                initial="pile",
                recorder=recorder,
            )
        else:
            with caching_disabled():
                result = run(
                    small_uniform,
                    build_protocol("qos-sampling"),
                    seed=7,
                    initial="pile",
                    recorder=recorder,
                )
        return result

    a, b = one(True), one(False)
    assert a.summary() == b.summary()
    np.testing.assert_array_equal(a.trajectory.n_unsatisfied, b.trajectory.n_unsatisfied)
    np.testing.assert_array_equal(a.trajectory.n_moved, b.trajectory.n_moved)
    np.testing.assert_array_equal(
        a.trajectory.potentials["unsat"], b.trajectory.potentials["unsat"]
    )
    assert sorted(a.trajectory.load_snapshots) == sorted(b.trajectory.load_snapshots)
    for k in a.trajectory.load_snapshots:
        np.testing.assert_array_equal(
            a.trajectory.load_snapshots[k], b.trajectory.load_snapshots[k]
        )


def test_replicate_equivalence_with_events_cell(small_uniform):
    """Replicated seeds, cached vs uncached, via the replicate() path."""
    spec = RunSpec(
        generator="uniform_slack",
        generator_kwargs={"n": 64, "m": 8, "slack": 0.3},
        protocol="qos-sampling",
        initial="pile",
        max_rounds=2000,
    )
    cached = [r.summary() for r in replicate(spec, 4, base_seed=3)]
    with caching_disabled():
        uncached = [r.summary() for r in replicate(spec, 4, base_seed=3)]
    assert cached == uncached


def test_cache_invalidation_on_mutation(small_uniform):
    state = State.worst_case_pile(small_uniform)
    v0 = state.version
    mask0 = state.satisfied_mask()
    assert state.satisfied_mask() is mask0  # memoized
    assert not mask0.flags.writeable

    state.move_user(0, 1)
    assert state.version > v0
    mask1 = state.satisfied_mask()
    assert mask1 is not mask0

    state.apply_migrations(np.asarray([1, 2]), np.asarray([2, 3]))
    mask2 = state.satisfied_mask()
    assert mask2 is not mask1
    # recompute matches a fresh uncached evaluation
    with caching_disabled():
        np.testing.assert_array_equal(state.satisfied_mask(), mask2)


def test_cache_copy_isolation(small_uniform):
    """A copied state diverges without polluting the original's cache."""
    state = State.worst_case_pile(small_uniform)
    state.satisfied_mask()
    clone = state.copy()
    clone.move_user(0, 1)
    state.move_user(0, 2)
    with caching_disabled():
        expected_state = state.satisfied_mask().copy()
        expected_clone = clone.satisfied_mask().copy()
    np.testing.assert_array_equal(state.satisfied_mask(), expected_state)
    np.testing.assert_array_equal(clone.satisfied_mask(), expected_clone)


@pytest.mark.parametrize("generator,generator_kwargs", GENERATOR_GRID)
@pytest.mark.parametrize("polite", [False, True])
def test_blocked_mask_cached_equals_uncached(generator, generator_kwargs, polite):
    """blocked_mask memoization is invisible: same bits, frozen, invalidated."""
    from repro.core.stability import blocked_mask
    from repro.registry import build_instance

    inst = build_instance(generator, **generator_kwargs)
    state = State.worst_case_pile(inst)
    cached = blocked_mask(state, polite=polite)
    assert not cached.flags.writeable
    assert blocked_mask(state, polite=polite) is cached  # memoized
    with caching_disabled():
        uncached = blocked_mask(state, polite=polite)
    np.testing.assert_array_equal(cached, uncached)

    # The two flavours are cached under distinct keys.
    other = blocked_mask(state, polite=not polite)
    assert other is not cached

    if inst.access is None:
        target = 1
    else:
        allowed = inst.access.allowed(0)
        target = int(allowed[allowed != state.assignment[0]][0])
    state.move_user(0, target)
    fresh = blocked_mask(state, polite=polite)
    assert fresh is not cached
    with caching_disabled():
        np.testing.assert_array_equal(fresh, blocked_mask(state, polite=polite))


def test_potentials_cached_equals_uncached(small_uniform):
    from repro.core.potential import (
        overload_potential,
        rosenthal_potential,
        violation_mass,
    )

    state = State.worst_case_pile(small_uniform)
    for fn in (overload_potential, violation_mass, rosenthal_potential):
        cached = fn(state)
        assert fn(state) == cached  # memoized value is stable
        with caching_disabled():
            assert fn(state) == cached

    before = {fn.__name__: fn(state) for fn in (overload_potential, violation_mass)}
    state.move_user(0, 1)
    with caching_disabled():
        expected = {
            fn.__name__: fn(state) for fn in (overload_potential, violation_mass)
        }
    after = {fn.__name__: fn(state) for fn in (overload_potential, violation_mass)}
    assert after == expected
    # sanity: the move actually changed at least one potential (else the
    # invalidation assertion above would be vacuous)
    assert after != before


def test_invalidate_caches_contract(small_uniform):
    """Direct array mutation + invalidate_caches() yields fresh queries."""
    state = State.worst_case_pile(small_uniform)
    assert state.n_satisfied < 12
    # move everyone by hand (not through the mutators)
    state.assignment[:] = np.asarray([0, 1, 2, 3] * 3)
    state.loads[:] = np.asarray([3.0, 3.0, 3.0, 3.0])
    state.invalidate_caches()
    assert state.is_satisfying()
