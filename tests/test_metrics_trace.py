"""Recorder/Trajectory and Trace serialization."""

import numpy as np
import pytest

from repro.core.potential import unsatisfied_count, violation_mass
from repro.core.protocols import QoSSamplingProtocol
from repro.sim.engine import run
from repro.sim.metrics import Recorder, Trajectory
from repro.sim.parallel import RunSpec, replicate
from repro.sim.trace import Trace, trajectory_to_dict, write_csv_series


class TestRecorder:
    def test_series_alignment(self, small_uniform):
        recorder = Recorder(
            potentials={"unsat": unsatisfied_count, "mass": violation_mass},
            snapshot_every=2,
        )
        result = run(
            small_uniform,
            QoSSamplingProtocol(),
            seed=3,
            initial="pile",
            recorder=recorder,
        )
        traj = result.trajectory
        assert traj.n_unsatisfied.size == traj.n_moved.size == traj.n_attempted.size
        assert traj.potentials["unsat"].size == traj.rounds
        assert traj.potentials["mass"].size == traj.rounds
        assert 0 in traj.load_snapshots
        for snap in traj.load_snapshots.values():
            assert snap.shape == (small_uniform.n_resources,)

    def test_potential_every_repeats_values(self, small_uniform, rng):
        from repro.core.state import State

        recorder = Recorder(potentials={"u": unsatisfied_count}, potential_every=3)
        state = State.worst_case_pile(small_uniform)
        for r in range(6):
            recorder.record(r, state, 0, 0)
        traj = recorder.finalize()
        # evaluated at rounds 0 and 3, repeated elsewhere
        assert np.all(traj.potentials["u"] == traj.potentials["u"][0])

    def test_validation(self):
        with pytest.raises(ValueError):
            Recorder(potential_every=0)
        with pytest.raises(ValueError):
            Recorder(snapshot_every=-1)


class TestTrajectory:
    def make(self, unsat):
        n = len(unsat)
        return Trajectory(
            n_unsatisfied=np.asarray(unsat),
            n_moved=np.ones(n, dtype=np.int64),
            n_attempted=np.full(n, 2, dtype=np.int64),
        )

    def test_first_satisfying_round(self):
        # Entry k is the state after round k's step, so the first zero at
        # index 2 means the run satisfied after 3 executed rounds.
        assert self.make([3, 2, 0, 0]).first_satisfying_round() == 3
        assert self.make([0, 0]).first_satisfying_round() == 1
        assert self.make([3, 2, 1]).first_satisfying_round() is None

    def test_summary(self):
        s = self.make([2, 1, 0]).summary()
        assert s["rounds"] == 3
        assert s["total_moves"] == 3
        assert s["total_attempts"] == 6
        assert s["first_satisfying_round"] == 3


class TestTrace:
    def test_roundtrip(self, tmp_path, small_uniform):
        spec = RunSpec(
            generator="uniform_slack",
            generator_kwargs={"n": 64, "m": 8, "slack": 0.3},
            label="trace-test",
        )
        runs = replicate(spec, 3, base_seed=1)
        trace = Trace.from_runs(spec, runs, note="hello")
        path = trace.save(tmp_path / "trace.json")
        loaded = Trace.load(path)
        assert loaded.spec["generator"] == "uniform_slack"
        assert loaded.meta["note"] == "hello"
        assert len(loaded.results) == 3
        rounds = loaded.values("rounds")
        assert rounds.shape == (3,)
        assert np.isfinite(rounds).all()
        assert sum(loaded.status_counts().values()) == 3

    def test_trajectory_serialization(self, small_uniform):
        recorder = Recorder(potentials={"u": unsatisfied_count})
        result = run(
            small_uniform,
            QoSSamplingProtocol(),
            seed=3,
            initial="pile",
            recorder=recorder,
        )
        d = trajectory_to_dict(result)
        assert isinstance(d["n_unsatisfied"], list)
        assert isinstance(d["potentials"]["u"], list)
        bare = run(small_uniform, QoSSamplingProtocol(), seed=3, initial="pile")
        assert trajectory_to_dict(bare) is None

    def test_values_handles_none(self):
        trace = Trace(spec={}, results=[{"rounds": 3}, {"rounds": None}])
        vals = trace.values("rounds")
        assert vals[0] == 3.0 and np.isnan(vals[1])

    def test_values_ragged_key_yields_nan(self):
        # present in SOME results: legitimate raggedness, NaN-padded
        trace = Trace(spec={}, results=[{"rounds": 3}, {"status": "quiescent"}])
        vals = trace.values("rounds")
        assert vals[0] == 3.0 and np.isnan(vals[1])

    def test_values_unknown_key_raises_with_available_keys(self):
        from repro.sim.trace import TraceKeyError

        trace = Trace(
            spec={}, results=[{"rounds": 3, "status": "satisfying"}, {"rounds": 5}]
        )
        with pytest.raises(TraceKeyError) as exc_info:
            trace.values("round")  # typo of "rounds"
        msg = str(exc_info.value)
        assert "'round'" in msg
        assert "absent from all 2" in msg
        assert "rounds" in msg and "status" in msg  # lists what IS there
        # still a KeyError for existing handlers
        with pytest.raises(KeyError):
            trace.values("round")

    def test_values_empty_trace_does_not_raise(self):
        assert Trace(spec={}, results=[]).values("anything").shape == (0,)

    def test_roundtrip_with_trajectories(self, tmp_path, small_uniform):
        """Full save/load round-trip of trajectory-bearing traces.

        JSON stringifies dict keys and downcasts arrays to lists — the
        round-trip must keep snapshot keys addressable (as strings) and
        potentials as floats.
        """
        recorder = Recorder(
            potentials={"u": unsatisfied_count, "mass": violation_mass},
            snapshot_every=2,
        )
        result = run(
            small_uniform,
            QoSSamplingProtocol(),
            seed=3,
            initial="pile",
            recorder=recorder,
        )
        trace = Trace.from_runs(
            {"generator": "fixture"}, [result], include_trajectories=True
        )
        path = trace.save(tmp_path / "traj.json")
        loaded = Trace.load(path)
        traj = loaded.results[0]["trajectory"]
        original = result.trajectory
        # snapshot round-indices survive as strings
        expected_keys = {str(k) for k in original.load_snapshots}
        assert set(traj["load_snapshots"]) == expected_keys
        for k, snap in traj["load_snapshots"].items():
            np.testing.assert_allclose(snap, original.load_snapshots[int(k)])
        # potentials as floats
        assert all(isinstance(v, float) for v in traj["potentials"]["u"])
        np.testing.assert_allclose(traj["potentials"]["mass"], original.potentials["mass"])
        np.testing.assert_array_equal(traj["n_unsatisfied"], original.n_unsatisfied)

    def test_provenance_survives_roundtrip(self, tmp_path, small_uniform):
        from repro.obs import PROVENANCE_FIELDS

        spec = RunSpec(
            generator="uniform_slack",
            generator_kwargs={"n": 64, "m": 8, "slack": 0.3},
        )
        trace = Trace.from_runs(spec, replicate(spec, 2, base_seed=1))
        loaded = Trace.load(trace.save(tmp_path / "prov.json"))
        prov = loaded.meta["provenance"]
        for f in PROVENANCE_FIELDS:
            assert f in prov
        # the seed-derivation key pins the exact replay configuration
        from repro.sim.parallel import spec_seed_key

        assert prov["spec_seed_key"] == spec_seed_key(spec)

    def test_explicit_provenance_not_overwritten(self):
        trace = Trace.from_runs(
            {"generator": "x"}, [], provenance={"git_sha": "pinned"}
        )
        assert trace.meta["provenance"] == {"git_sha": "pinned"}


def test_write_csv_series(tmp_path):
    path = write_csv_series(
        tmp_path / "sub" / "series.csv",
        ["n", "rounds"],
        [[100, 5], [200, np.float64(6.5)]],
    )
    text = path.read_text().splitlines()
    assert text[0] == "n,rounds"
    assert text[1] == "100,5"
    assert text[2] == "200,6.5"


def test_write_csv_series_none_and_quoting_roundtrip(tmp_path):
    """None -> empty cell; commas/quotes/newlines survive a stdlib reader."""
    import csv

    header = ["label", "rounds_median", "note"]
    rows = [
        ["qos-sampling", None, 'says "hi", twice'],
        ["permit[d=2,probes]", 7, "line1\nline2"],
        ["plain", 3.5, ""],
    ]
    path = write_csv_series(tmp_path / "series.csv", header, rows)

    text = path.read_text()
    assert "None" not in text  # the old writer emitted literal "None"

    with open(path, newline="") as fh:
        parsed = list(csv.reader(fh))
    assert parsed[0] == header
    assert parsed[1] == ["qos-sampling", "", 'says "hi", twice']
    assert parsed[2] == ["permit[d=2,probes]", "7", "line1\nline2"]
    assert parsed[3] == ["plain", "3.5", ""]
