"""The experiment suite at micro scale: structure and key claims hold."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    f1_scaling_n,
    f2_slack,
    f10_multi_probe,
    f6_rate_ablation,
    f7_asynchrony,
    f8_failures,
    f9_topology,
    run_experiment,
    t1_protocols,
    t2_infeasible,
    t3_msgsim,
    t4_drift_and_oblivious,
)


MICRO = {
    # F1 needs a wide n range: over a narrow one, small-integer round counts
    # let a sqrt-ish power law edge out the log fit.
    "F1": dict(ns=(64, 128, 256, 512, 1024, 2048, 4096), users_per_resource=16, n_reps=5),
    "F2": dict(slacks=(0.0, 0.25, 0.5), n=256, m=16, n_reps=5),
    "F3": dict(ms=(4, 8, 16), n_reps=4),
    "F4": dict(n=256, m=16, n_reps=3, max_rounds=10_000),
    "F5": dict(n=256, m=16, n_reps=3, max_rounds=10_000),
    "F6": dict(ps=(0.25, 1.0), n=256, m=16, n_reps=4, max_rounds=10_000),
    "F7": dict(alphas=(1.0, 0.5), partitions=(2,), n=256, m=16, n_reps=4),
    "F8": dict(failure_counts=(1, 2), n=256, m=16, n_reps=3, settle_rounds=30),
    "F9": dict(topologies=("complete", "ring"), n=128, m=8, n_reps=4, max_rounds=20_000),
    "F10": dict(ds=(1, 2), n=256, m=16, n_reps=4),
    "F11": dict(ns=(250, 1000, 4000), n_reps=3),
    "F12": dict(rhos=(0.6, 1.2), m=8, q=4, rounds=150, warmup=40, n_reps=2),
    "F13": dict(p_losses=(0.0, 0.2), n=48, m=6, n_reps=2, max_time=400.0),
    "F14": dict(ns=(256, 1024, 4096), users_per_resource=32, n_reps=3),
    "T1": dict(n=256, m=16, n_reps=3, max_rounds=3_000),
    "T2": dict(overload_factors=(1.5,), m=8, q=4, n_reps=3),
    "T3": dict(n=96, m=8, n_reps=3),
    "T4": dict(n=128, m=8, n_drift_runs=3, n_reps=3, max_rounds=3_000),
    "T5": dict(slacks=(0.25,), n=256, m=8, n_reps=200, delta=0.15),
}


def test_registry_is_complete():
    assert set(EXPERIMENTS) == set(MICRO)
    for eid, exp in EXPERIMENTS.items():
        assert exp.experiment_id == eid
        assert exp.description
        assert exp.ci and exp.full


@pytest.mark.parametrize("eid", sorted(MICRO))
def test_experiment_runs_and_is_well_formed(eid):
    result = run_experiment(eid, "ci", **MICRO[eid])
    assert result.experiment_id == eid
    assert result.rows, eid
    for row in result.rows:
        assert len(row) == len(result.headers)
    text = result.render()
    assert eid in text


def test_invalid_scale_and_id():
    with pytest.raises(ValueError):
        EXPERIMENTS["F1"].run("huge")
    with pytest.raises(KeyError):
        run_experiment("nope")


class TestKeyClaims:
    """The headline shape claims at micro scale (seeds fixed, stable)."""

    def test_f1_growth_is_logarithmic(self):
        result = f1_scaling_n(**MICRO["F1"])
        assert result.extra["verdict"] == "logarithmic"

    def test_f2_tight_is_harder(self):
        result = f2_slack(**MICRO["F2"])
        medians = result.extra["medians"]
        assert medians[0] > medians[-1]

    def test_t1_winners(self):
        result = t1_protocols(**MICRO["T1"])
        stats = result.extra["stats"]
        permit = stats["permit"]["rounds_median"]
        naive = stats["naive-greedy"]["rounds_median"]
        sampling = stats["qos-sampling(p=0.5)"]["rounds_median"]
        assert permit <= sampling  # no overshoot -> no slower
        assert naive >= permit  # herding pays
        # sequential best response needs ~n rounds (one move per round)
        br = stats["best-response"]["rounds_median"]
        assert br > 10 * sampling

    def test_f6_damping_beats_p1_in_moves(self):
        result = f6_rate_ablation(**MICRO["F6"])
        rows = {row[0]: row for row in result.rows}
        # p = 1 herds: strictly more migrations per user than p = 0.25
        assert rows["const(1)"][5] > rows["const(0.25)"][5]

    def test_f7_alpha_slowdown(self):
        result = f7_asynchrony(**MICRO["F7"])
        norm = result.extra["normalised"]
        sync = norm["synchronous"]
        half = norm["alpha(0.5)"]
        assert half == pytest.approx(sync, rel=1.2)  # same order after scaling

    def test_f8_recovers(self):
        result = f8_failures(**MICRO["F8"])
        for row in result.rows:
            assert row[1] == 100  # sat% — all runs re-converge
            assert row[2] is not None and row[2] >= 0

    def test_f9_ring_slower_than_complete(self):
        result = f9_topology(**MICRO["F9"])
        medians = result.extra["medians"]
        assert medians["ring"] > medians["complete"]

    def test_t2_pile_beats_random_and_permit_hits_opt(self):
        result = t2_infeasible(**MICRO["T2"])
        by_key = {(row[2], row[3]): row for row in result.rows}
        permit_pile = by_key[("pile", "permit")]
        permit_rand = by_key[("random", "permit")]
        assert permit_pile[6] == pytest.approx(100.0, abs=1.0)  # % of OPT
        assert permit_rand[6] < permit_pile[6]

    def test_t3_executions_agree(self):
        result = t3_msgsim(**MICRO["T3"])
        engine_row, msg_row = result.rows
        assert engine_row[1] == pytest.approx(100.0)
        assert msg_row[1] == pytest.approx(100.0)
        # time ratio within a factor 3 either way
        assert 1 / 3 <= msg_row[2] / engine_row[2] <= 3

    def test_f11_fluid_deviation_shrinks(self):
        from repro.experiments import f11_fluid_limit

        result = f11_fluid_limit(**MICRO["F11"])
        devs = result.extra["single_devs"]
        assert devs[-1] < devs[0]

    def test_t5_whp_bound_is_valid(self):
        from repro.experiments import t5_tail

        result = t5_tail(**MICRO["T5"])
        row = result.rows[0]
        assert row[3] >= row[1]  # whp bound at or above the median

    def test_f12_underload_beats_overload(self):
        from repro.experiments import f12_churn

        result = f12_churn(**MICRO["F12"])
        stats = result.extra["stats"]
        for proto in ("qos-sampling", "permit"):
            assert stats[(0.6, proto)] > stats[(1.2, proto)]

    def test_f10_structure(self):
        result = f10_multi_probe(**MICRO["F10"])
        med = result.extra["medians"]
        assert med[1] is not None and med[2] is not None
        # at micro scale only sanity: both converge; messages grow with d
        msgs = result.extra["messages"]
        assert msgs[2] > msgs[1] * 0.8

    def test_t4_drift_negative_and_oblivious_collapses(self):
        result = t4_drift_and_oblivious(**MICRO["T4"])
        rows = {row[0]: row for row in result.rows}
        assert rows["overload-potential drift"][1] < 0
        assert rows["unsatisfied-count drift"][1] < 0
        oblivious = rows[
            "overload satisfied/OPT_sat% [selfish-rebalance (QoS-oblivious)]"
        ]
        permit = rows["overload satisfied/OPT_sat% [permit]"]
        assert oblivious[1] < 10.0
        assert permit[1] > 90.0
