"""Shared helpers for the benchmark suite.

Every ``bench_<id>.py`` module regenerates one table/figure of
``EXPERIMENTS.md`` at CI scale inside a ``pytest-benchmark`` measurement,
prints the reproduced rows (visible with ``pytest benchmarks/
--benchmark-only -s``) and writes them to ``benchmarks/output/<id>.txt``
so the artefact survives output capturing.

Full-scale regeneration goes through the CLI:
``python -m repro run <ID> --scale full``.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import ExperimentResult, run_experiment

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def run_and_record(
    benchmark, experiment_id: str, **overrides
) -> ExperimentResult:
    """Run one experiment (once) under the benchmark timer and persist it.

    ``pedantic`` with a single round: the experiments are internally
    replicated already; timing them once keeps the suite's wall-clock sane
    while still producing a timing row per experiment.
    """
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, "ci", **overrides),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / f"{experiment_id.lower()}.txt").write_text(text + "\n")
    print("\n" + text)
    return result
