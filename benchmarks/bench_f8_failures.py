"""Bench F8: crash self-stabilisation — recovery via the ordinary protocol."""

from _common import run_and_record


def bench_f8_failures(benchmark):
    result = run_and_record(
        benchmark, "F8", failure_counts=(1, 4, 8), n=2048, m=64,
        settle_rounds=100, n_reps=7,
    )
    for row in result.rows:
        assert row[1] == 100  # every run re-converged
        assert row[2] is not None and row[2] < 100  # recovery well under budget
