"""Bench F1: convergence rounds vs n — the O(log n) headline claim.

Regenerates the F1 series (median rounds to satisfaction per n at fixed
slack and load factor, pile start) and asserts the fitted growth verdict is
logarithmic.  Full-size series: ``python -m repro run F1 --scale full``.
"""

from _common import run_and_record


def bench_f1_scaling_n(benchmark):
    result = run_and_record(
        benchmark,
        "F1",
        ns=(250, 500, 1000, 2000, 4000, 8000),
        n_reps=9,
    )
    assert result.extra["verdict"] == "logarithmic"
    assert all(row[2] == 100 for row in result.rows)  # all runs satisfied
