"""Bench F11 (extension): the fluid limit — discrete -> mean-field."""

from _common import run_and_record


def bench_f11_fluid_limit(benchmark):
    result = run_and_record(
        benchmark, "F11", ns=(500, 2000, 8000, 32000), n_reps=7
    )
    devs = result.extra["single_devs"]
    # deviations shrink monotonically-ish across a 64x range of n
    assert devs[-1] < 0.25 * devs[0]
