"""Bench T5: convergence-time distribution — w.h.p. bound + geometric tail."""

from _common import run_and_record


def bench_t5_tail(benchmark):
    result = run_and_record(
        benchmark, "T5", slacks=(0.25, 0.05), n=1024, m=32, n_reps=300,
        delta=0.1,
    )
    for row in result.rows:
        median, whp = row[1], row[3]
        # concentration: the certified w.h.p. bound is within 2.5x the median
        assert whp <= 2.5 * median
        assert row[6] is None or row[6] > 0.8  # geometric tail fits well
