"""Bench F5: heterogeneous resources (identical / related / convex / M/M/1)."""

from _common import run_and_record


def bench_f5_hetero_resources(benchmark):
    result = run_and_record(benchmark, "F5")
    # every latency family converges to full satisfaction
    for row in result.rows:
        assert row[2] == 100, row
