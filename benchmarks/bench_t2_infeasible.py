"""Bench T2: infeasible instances vs OPT_sat — the satisfaction gap."""

from _common import run_and_record


def bench_t2_infeasible(benchmark):
    result = run_and_record(
        benchmark, "T2", overload_factors=(1.25, 1.5, 2.0), m=32, q=8, n_reps=7
    )
    by_key = {(r[0], r[2], r[3]): r for r in result.rows}
    for factor in (1.25, 1.5, 2.0):
        permit_pile = by_key[(factor, "pile", "permit")]
        permit_rand = by_key[(factor, "random", "permit")]
        assert permit_pile[6] >= 99.0          # % of OPT from the pile
        assert permit_rand[6] <= permit_pile[6]
