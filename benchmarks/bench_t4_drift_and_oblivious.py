"""Bench T4: the drift premise + QoS-aware vs oblivious balancing."""

from _common import run_and_record


def bench_t4_drift_and_oblivious(benchmark):
    result = run_and_record(
        benchmark, "T4", n=1024, m=32, n_drift_runs=6, n_reps=7
    )
    rows = {r[0]: r for r in result.rows}
    assert rows["overload-potential drift"][1] < 0
    assert rows["unsatisfied-count drift"][1] < 0
    assert rows["overload satisfied/OPT_sat% [permit]"][1] > 95
    assert (
        rows["overload satisfied/OPT_sat% [selfish-rebalance (QoS-oblivious)]"][1]
        < 5
    )
