"""Bench F9: one-hop visibility on resource graphs — density vs stalling."""

from _common import run_and_record


def bench_f9_topology(benchmark):
    result = run_and_record(
        benchmark,
        "F9",
        topologies=("complete", "random-regular", "barabasi-albert", "ring"),
        n=1024,
        m=32,
        n_reps=9,
        max_rounds=100_000,
    )
    rows = {r[0]: r for r in result.rows}
    # dense visibility always satisfies; the ring converges at most as often
    assert rows["complete"][1] == 100
    assert rows["ring"][1] <= rows["complete"][1]
    med = result.extra["medians"]
    if med.get("ring") is not None:
        assert med["ring"] > med["complete"]
