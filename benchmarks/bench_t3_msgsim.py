"""Bench T3: round engine vs asynchronous message-passing execution."""

from _common import run_and_record


def bench_t3_msgsim(benchmark):
    result = run_and_record(benchmark, "T3", n=384, m=24, n_reps=7)
    engine_row, msg_row = result.rows
    assert engine_row[1] == 100.0 and msg_row[1] == 100.0
    ratio = msg_row[2] / engine_row[2]
    assert 1 / 3 <= ratio <= 3  # tick-for-round agreement
