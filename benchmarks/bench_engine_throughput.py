"""Engine-throughput benches + the machine-readable harness entry point.

Two layers:

- the micro-benches below measure single vectorized operations under
  ``pytest-benchmark`` (one synchronous round at 100k users, the
  satisfaction query at 1M users, cached vs uncached);
- :func:`bench_harness_smoke` runs the full machine-readable harness
  (:mod:`repro.bench` — the same thing ``python -m repro bench`` and the
  CI smoke job invoke) and persists ``BENCH_engine.json`` so every bench
  run refreshes the perf baseline.
"""

from pathlib import Path

import numpy as np

from repro.bench import run_bench
from repro.core.protocols import QoSSamplingProtocol
from repro.core.state import State, caching_disabled
from repro.workloads.generators import uniform_slack

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_engine_round_100k_users(benchmark):
    inst = uniform_slack(100_000, 3125, slack=0.25)
    rng = np.random.default_rng(0)
    protocol = QoSSamplingProtocol()
    protocol.reset(inst, rng)
    base = State.worst_case_pile(inst)
    active = np.ones(inst.n_users, dtype=bool)

    def one_round():
        state = base.copy()
        protocol.step(state, active, rng)
        return state

    state = benchmark(one_round)
    assert state.n_satisfied > 0


def bench_satisfaction_query_1m_users(benchmark):
    inst = uniform_slack(1_000_000, 31_250, slack=0.25)
    rng = np.random.default_rng(0)
    state = State.uniform_random(inst, rng)

    result = benchmark(state.satisfied_mask)
    assert result.shape == (1_000_000,)


def bench_satisfaction_query_1m_users_uncached(benchmark):
    """The uncached reference: what every call cost before memoization."""
    inst = uniform_slack(1_000_000, 31_250, slack=0.25)
    rng = np.random.default_rng(0)
    state = State.uniform_random(inst, rng)

    with caching_disabled():
        result = benchmark(state.satisfied_mask)
    assert result.shape == (1_000_000,)


def bench_harness_smoke(benchmark):
    """Full harness at smoke scale; writes BENCH_engine.json at repo root."""
    payload = benchmark.pedantic(
        lambda: run_bench(scale="smoke", out=REPO_ROOT / "BENCH_engine.json"),
        rounds=1,
        iterations=1,
    )
    assert len(payload["cells"]) >= 4
    assert (REPO_ROOT / "BENCH_engine.json").exists()
