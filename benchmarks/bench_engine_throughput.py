"""Micro-benchmark: raw engine round throughput (the hot path).

Unlike the experiment benches (timed once), this measures the vectorized
round update properly over many iterations: one synchronous round of the
sampling protocol on 100k users / 3125 resources, held just below
convergence so every round does real work.
"""

import numpy as np

from repro.core.protocols import QoSSamplingProtocol
from repro.core.state import State
from repro.workloads.generators import uniform_slack


def bench_engine_round_100k_users(benchmark):
    inst = uniform_slack(100_000, 3125, slack=0.25)
    rng = np.random.default_rng(0)
    protocol = QoSSamplingProtocol()
    protocol.reset(inst, rng)
    base = State.worst_case_pile(inst)
    active = np.ones(inst.n_users, dtype=bool)

    def one_round():
        state = base.copy()
        protocol.step(state, active, rng)
        return state

    state = benchmark(one_round)
    assert state.n_satisfied > 0


def bench_satisfaction_query_1m_users(benchmark):
    inst = uniform_slack(1_000_000, 31_250, slack=0.25)
    rng = np.random.default_rng(0)
    state = State.uniform_random(inst, rng)

    result = benchmark(state.satisfied_mask)
    assert result.shape == (1_000_000,)
