"""Bench F4: heterogeneous threshold profiles (staggered / zipf / trap)."""

from _common import run_and_record


def bench_f4_hetero_users(benchmark):
    result = run_and_record(benchmark, "F4")
    rows = {(r[0], r[1]): r for r in result.rows}
    # the benign profiles fully satisfy under the permit protocol
    assert rows[("staggered", "permit")][2] == 100
    assert rows[("zipf(a=1.5)", "permit")][2] == 100
    # the trap rows go quiescent below full satisfaction for every protocol
    for proto in ("qos-sampling", "permit", "best-response"):
        assert rows[("two-class trap (random)", proto)][3] == 100  # quiescent%
        assert rows[("two-class trap (random)", proto)][4] < 100   # satisfied%
