"""Bench F6: migration-rate ablation — damping matters (U-shape)."""

from _common import run_and_record


def bench_f6_rate_ablation(benchmark):
    result = run_and_record(
        benchmark, "F6", ps=(0.0625, 0.25, 0.5, 1.0), n=2048, m=64, n_reps=9
    )
    med = result.extra["medians"]
    # too-timid and too-bold are both worse than the middle
    assert med["const(0.0625)"] > med["const(0.5)"]
    assert med["const(1)"] > med["const(0.5)"]
