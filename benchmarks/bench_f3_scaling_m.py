"""Bench F3: convergence rounds vs m at a fixed load factor n/m."""

from _common import run_and_record


def bench_f3_scaling_m(benchmark):
    result = run_and_record(benchmark, "F3", ms=(8, 16, 32, 64, 128), n_reps=7)
    medians = result.extra["medians"]
    # sub-linear growth: doubling m four times must not double rounds four times
    assert medians[-1] <= 4 * medians[0]
