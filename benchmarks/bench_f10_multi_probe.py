"""Bench F10 (extension): power of d choices — the two-choices sweet spot."""

from _common import run_and_record


def bench_f10_multi_probe(benchmark):
    result = run_and_record(
        benchmark, "F10", ds=(1, 2, 4, 8), n=2048, m=64, n_reps=9
    )
    med = result.extra["medians"]
    # the two-choices jump...
    assert med[2] <= med[1]
    # ...and the herding reversal at large d
    assert med[8] > med[2]
