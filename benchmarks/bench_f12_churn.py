"""Bench F12 (extension): steady-state QoS under churn vs offered load."""

from _common import run_and_record


def bench_f12_churn(benchmark):
    result = run_and_record(
        benchmark, "F12", rhos=(0.6, 0.95, 1.2), m=32, q=8,
        rounds=400, warmup=100, n_reps=3,
    )
    stats = result.extra["stats"]
    for proto in ("qos-sampling", "permit"):
        assert stats[(0.6, proto)] > 0.97     # headroom -> near-perfect QoS
        assert stats[(1.2, proto)] < 0.6      # overload -> degraded
        assert stats[(1.2, proto)] > 0.02     # ...but far from frozen collapse
