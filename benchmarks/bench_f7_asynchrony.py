"""Bench F7: activation schedules — the 1/alpha slowdown law."""

from _common import run_and_record


def bench_f7_asynchrony(benchmark):
    result = run_and_record(
        benchmark, "F7", alphas=(1.0, 0.5, 0.25), partitions=(2, 4),
        n=2048, m=64, n_reps=9,
    )
    norm = result.extra["normalised"]
    base = norm["synchronous"]
    for label, value in norm.items():
        assert value is not None
        # normalised rounds within 2.5x of the synchronous baseline
        assert value <= 2.5 * base, (label, value, base)
