"""Bench T1: the protocol comparison table."""

from _common import run_and_record


def bench_t1_protocols(benchmark):
    result = run_and_record(benchmark, "T1", n=2048, m=64, n_reps=7)
    stats = result.extra["stats"]
    permit = stats["permit"]["rounds_median"]
    sampling = stats["qos-sampling(p=0.5)"]["rounds_median"]
    naive = stats["naive-greedy"]["rounds_median"]
    br = stats["best-response"]["rounds_median"]
    assert permit <= sampling <= naive
    assert br > 20 * sampling  # sequentiality costs ~n rounds
