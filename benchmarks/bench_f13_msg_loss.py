"""Bench F13: self-healing message protocol under loss — graceful degradation."""

from _common import run_and_record


def bench_f13_msg_loss(benchmark):
    result = run_and_record(
        benchmark, "F13", p_losses=(0.0, 0.05, 0.2), n=96, m=8, n_reps=3,
    )
    # The null plan must reproduce the fault-free run bit-for-bit.
    assert result.extra["bitexact_p0"]
    ticks = []
    msgs = []
    for row in result.rows:
        assert row[1] == 100  # no deadlocks: every run fully satisfied
        assert row[2] is not None
        ticks.append(row[2])
        msgs.append(row[3])
    # Graceful degradation: loss costs messages and time, monotonically
    # across the swept loss rates, and never breaks conservation.
    assert msgs == sorted(msgs)
    assert ticks == sorted(ticks)
    assert result.extra["all_conserved"]
