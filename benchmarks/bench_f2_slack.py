"""Bench F2: convergence rounds vs slack — tight instances are the hard regime."""

from _common import run_and_record


def bench_f2_slack(benchmark):
    result = run_and_record(benchmark, "F2", n=2048, m=64, n_reps=9)
    medians = result.extra["medians"]
    # the tight end costs at least 2x the loose end
    assert medians[0] >= 2 * medians[-1]
